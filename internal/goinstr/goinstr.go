// Package goinstr is the vft-go front-end: it turns a real Go package
// into a VerifiedFT workload by source rewriting. The pipeline is
//
//	Load      parse + type-check the package (go/parser, go/types — the
//	          stdlib "source" importer, so no toolchain dependencies)
//	Analyze   flow-insensitive may-share analysis over the typed AST
//	Rewrite   instrument shared memory accesses and map Go
//	          synchronization (go statements, sync.Mutex/RWMutex/
//	          WaitGroup/Once, channels, sync/atomic) onto calls into the
//	          runtime shim (internal/goinstr/rt)
//	Emit      write the rewritten package plus the shim and its goid
//	          dependency into a self-contained shadow module that builds
//	          offline (module vftshadow, no requirements)
//	Run       go build the shadow module and execute it with VFT_TRACE
//	          set, yielding a binary v2 trace + meta sidecar
//	Check     decode the trace and replay it through the verified
//	          checker, rendering reports with source-level names
//
// The verified core is untouched: the front-end only manufactures traces
// in the v2 language the checker already speaks.
//
// # The may-share analysis
//
// Instrumenting every access is sound but slow and noisy. The analysis
// proves some accesses goroutine-local and elides them. A variable may
// be shared if it is package-level, has its address taken anywhere, or
// is captured by a function literal that may run on another goroutine (a
// `go` literal, or any literal that escapes — only immediately-invoked
// and deferred literals are known to stay on the creating goroutine).
// An access is elided only when its storage is provably a local
// variable's own storage: a direct use of a non-shared variable, a field
// path through struct values, or an index into an array value, rooted at
// a non-shared local. Anything reached through a pointer, slice, map or
// interface is always instrumented — the referent may be shared even
// when the referring variable is not (a slice value sent over a channel
// shares its backing array without the slice variable ever having its
// address taken).
//
// Soundness of elision for report parity: an elided access touches
// storage owned by a variable only one goroutine can reach, so it can
// never be one side of a race, so instrumenting it cannot add a report —
// it can only add never-racing events. Reports with elision on and off
// are therefore identical, which the corpus end-to-end test enforces
// byte-for-byte.
package goinstr

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Options configure one Instrument run.
type Options struct {
	// Elide enables the may-share elision; when false every
	// instrumentable access is instrumented (the parity baseline).
	Elide bool

	// IncludeTests also loads and rewrites _test.go files (the `vft-go
	// test` mode) and injects a TestMain that flushes the trace.
	IncludeTests bool

	// OutDir is where the shadow module is written. Empty means the
	// caller must set it (the CLI uses a temp dir).
	OutDir string
}

// Stats counts what the rewriter did; the CLI surfaces these through the
// obs registry as instr.sites / instr.elided / instr.skipped.
type Stats struct {
	// Sites is the number of instrumentable access sites seen.
	Sites int
	// Elided is how many of those the may-share analysis proved local
	// and left uninstrumented.
	Elided int
	// Skipped counts constructs the rewriter does not model precisely
	// and conservatively left uninstrumented (non-addressable l-values,
	// unsupported sync APIs); each skip is a possible false negative,
	// never a false positive.
	Skipped int
}

// ElisionRate is Elided/Sites, 0 if no sites.
func (s Stats) ElisionRate() float64 {
	if s.Sites == 0 {
		return 0
	}
	return float64(s.Elided) / float64(s.Sites)
}

// Package is a loaded, type-checked single-directory package.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Names []string // base file name per Files entry
	Pkg   *types.Package
	Info  *types.Info
	Dir   string
}

// Instrumented is the result of Instrument: a shadow module on disk plus
// the rewrite statistics.
type Instrumented struct {
	// Dir is the shadow module root (go build runs here).
	Dir string
	// Stats are the rewrite counters.
	Stats Stats
	// Main reports whether the package is a main package.
	Main bool
}

// Instrument loads the package in dir, runs the analysis and rewriter,
// and emits the shadow module into opts.OutDir.
func Instrument(dir string, opts Options) (*Instrumented, error) {
	if opts.OutDir == "" {
		return nil, fmt.Errorf("goinstr: Options.OutDir must be set")
	}
	pkg, err := Load(dir, opts.IncludeTests)
	if err != nil {
		return nil, err
	}
	sh := Analyze(pkg)
	rw := newRewriter(pkg, sh, opts.Elide)
	rw.rewriteAll()
	if err := emit(pkg, rw, opts); err != nil {
		return nil, err
	}
	return &Instrumented{Dir: opts.OutDir, Stats: rw.stats, Main: pkg.Pkg.Name() == "main"}, nil
}
