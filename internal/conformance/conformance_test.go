package conformance

import (
	"math/rand"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// format renders a trace in the vft-race text format for failure messages.
func format(tr trace.Trace) string {
	var b strings.Builder
	if err := trace.Encode(&b, tr); err != nil {
		return err.Error()
	}
	return b.String()
}

// soak reports whether the long-running exploration tests should run; they
// are opt-in via VFT_SOAK=1 (tier-1 runs `go test ./...` without -short, so
// -short cannot be the gate).
func soak() bool { return os.Getenv("VFT_SOAK") != "" }

// TestProgramsConform explores every built-in kernel under both policies
// and requires complete detector/oracle agreement on every schedule. 20
// schedules per policy is the tier-1 floor; the soak run multiplies it.
func TestProgramsConform(t *testing.T) {
	schedules := 20
	if soak() {
		schedules = 500
	}
	for _, prog := range Programs() {
		prog := prog
		t.Run(prog.Name, func(t *testing.T) {
			for _, policy := range sched.PolicyNames() {
				opts := DefaultOptions()
				opts.Policy = policy
				opts.Schedules = schedules
				sum, err := Explore(prog, opts)
				if err != nil {
					t.Fatalf("%s: %v", policy, err)
				}
				for _, d := range sum.Divergences {
					t.Errorf("%v\n%s", d, format(d.Trace))
				}
				if sum.Schedules != schedules {
					t.Fatalf("%s: explored %d schedules, want %d", policy, sum.Schedules, schedules)
				}
			}
		})
	}
}

// TestWorkloadsConform runs every Table 1 benchmark kernel (at test size)
// under schedule exploration. The kernels are race-free by construction, so
// beyond detector/oracle agreement the oracle itself must stay silent on
// every explored interleaving.
func TestWorkloadsConform(t *testing.T) {
	schedules := 20
	if soak() {
		schedules = 100
	}
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.Schedules = schedules
			sum, err := Explore(FromWorkload(w), opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range sum.Divergences {
				t.Errorf("%v\n%s", d, format(d.Trace))
			}
			if sum.Racy != 0 {
				t.Errorf("%d of %d schedules raced on a race-free kernel", sum.Racy, sum.Schedules)
			}
		})
	}
}

// TestGeneratedTracesConform re-executes generated feasible traces as
// concurrent programs and explores alternative schedules of each, checking
// detector/oracle agreement per schedule — the schedule-space counterpart
// of the sequential differential fuzzer.
func TestGeneratedTracesConform(t *testing.T) {
	traces, perTrace := 10, 10
	if soak() {
		traces, perTrace = 200, 50
	}
	cfg := trace.DefaultGenConfig()
	for i := 0; i < traces; i++ {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		tr := trace.Generate(rng, cfg)
		prog, err := FromTrace("gen", tr)
		if err != nil {
			t.Fatal(err)
		}
		for _, policy := range sched.PolicyNames() {
			opts := DefaultOptions()
			opts.Policy = policy
			opts.Schedules = perTrace
			opts.SeedBase = uint64(i + 1)
			sum, err := Explore(prog, opts)
			if err != nil {
				t.Fatalf("trace %d: %v", i, err)
			}
			for _, d := range sum.Divergences {
				t.Errorf("trace %d: %v\n%s", i, d, format(d.Trace))
			}
		}
	}
}

// TestFromTracePreservesEvents checks that re-executing a trace under
// control yields a linearization with exactly the original per-thread
// projections: the schedule may reorder across threads, never within one.
func TestFromTracePreservesEvents(t *testing.T) {
	cfg := trace.DefaultGenConfig()
	for i := 0; i < 5; i++ {
		rng := rand.New(rand.NewSource(int64(7 + i)))
		orig := trace.Generate(rng, cfg)
		prog, err := FromTrace("gen", orig)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := RunOne(prog, "pct", 99, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.Validate(got); err != nil {
			t.Fatalf("trace %d: re-executed linearization infeasible: %v", i, err)
		}
		if !reflect.DeepEqual(project(orig), project(got)) {
			t.Fatalf("trace %d: per-thread projections changed:\noriginal:\n%srecorded:\n%s",
				i, format(orig), format(got))
		}
	}
}

func project(tr trace.Trace) map[int][]string {
	out := map[int][]string{}
	for _, op := range tr {
		out[int(op.T)] = append(out[int(op.T)], op.String())
	}
	return out
}

// TestReplayDeterminism: the same (program, policy, seed) must reproduce
// the identical linearization — that is the whole replay story — and
// different seeds must reach more than one linearization for a
// schedule-sensitive program.
func TestReplayDeterminism(t *testing.T) {
	for _, prog := range Programs() {
		for _, policy := range sched.PolicyNames() {
			a, _, err := RunOne(prog, policy, 0xfeedbeef, []string{"vft-v2"})
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := RunOne(prog, policy, 0xfeedbeef, []string{"vft-v2"})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s/%s: same seed, different linearizations:\n%s---\n%s",
					prog.Name, policy, format(a), format(b))
			}
		}
	}
}

// TestScheduleDiversity pins down that exploration actually moves the
// schedule: across 20 seeds the policies must reach several distinct
// linearizations of racy-counter, and must see lock-shuffle both race and
// not race (its verdict is schedule-dependent).
func TestScheduleDiversity(t *testing.T) {
	byName := map[string]Program{}
	for _, p := range Programs() {
		byName[p.Name] = p
	}
	for _, policy := range sched.PolicyNames() {
		opts := DefaultOptions()
		opts.Policy = policy
		sum, err := Explore(byName["racy-counter"], opts)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Distinct < 3 {
			t.Errorf("%s: only %d distinct linearizations of racy-counter in %d schedules",
				policy, sum.Distinct, sum.Schedules)
		}
		if sum.Racy != sum.Schedules {
			t.Errorf("%s: racy-counter raced on %d/%d schedules, want all", policy, sum.Racy, sum.Schedules)
		}
		sum, err = Explore(byName["lock-shuffle"], opts)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Racy == 0 || sum.Racy == sum.Schedules {
			t.Errorf("%s: lock-shuffle raced on %d/%d schedules, want a schedule-dependent mix",
				policy, sum.Racy, sum.Schedules)
		}
	}
}
