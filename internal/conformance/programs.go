package conformance

import (
	"repro/internal/rtsim"
	"repro/internal/workloads"
)

// Programs returns the built-in conformance kernels: small programs chosen
// so that, together, they exercise every simulator primitive (vars, arrays,
// locks, volatiles, barriers, conds, once, fork/join) under controlled
// schedules. Several are intentionally racy — and racy in a
// schedule-dependent way, so exploration actually changes the oracle's
// verdict from run to run — because the detectors' agreement on *where* the
// first race appears is exactly what the suite checks.
func Programs() []Program {
	return []Program{
		{Name: "racy-counter", Run: racyCounter},
		{Name: "locked-counter", Run: lockedCounter},
		{Name: "message-guarded", Run: messageGuarded},
		{Name: "message-unguarded", Run: messageUnguarded},
		{Name: "lock-shuffle", Run: lockShuffle},
		{Name: "barrier-phases", Run: barrierPhases},
		{Name: "fork-join-tree", Run: forkJoinTree},
		{Name: "once-init", Run: onceInit},
		{Name: "cond-handoff", Run: condHandoff},
	}
}

// FromWorkload wraps one Table 1 benchmark kernel at its test size so the
// same programs the harness measures also run under schedule exploration.
func FromWorkload(w workloads.Workload) Program {
	return Program{Name: w.Name, Run: func(rt *rtsim.Runtime) { w.Run(rt, w.TestSize) }}
}

// racyCounter: three threads bump an unlocked counter. Racy under every
// schedule, but the *position* of the first racing access moves with the
// interleaving.
func racyCounter(rt *rtsim.Runtime) {
	main := rt.Main()
	c := rt.NewVar()
	main.Parallel(3, func(w *rtsim.Thread, i int) {
		v := c.Load(w)
		c.Store(w, v+1)
	})
	c.Load(main)
}

// lockedCounter: the same shape with the lock in place. Race-free under
// every schedule.
func lockedCounter(rt *rtsim.Runtime) {
	main := rt.Main()
	c := rt.NewVar()
	mu := rt.NewMutex()
	main.Parallel(3, func(w *rtsim.Thread, i int) {
		mu.Lock(w)
		v := c.Load(w)
		c.Store(w, v+1)
		mu.Unlock(w)
	})
	mu.Lock(main)
	c.Load(main)
	mu.Unlock(main)
}

// messageGuarded: volatile message passing done right — the reader touches
// the data only when the flag load observed the publication. Race-free
// under every schedule, but the reader's behavior (and hence the recorded
// linearization) depends on where the scheduler places the flag load.
func messageGuarded(rt *rtsim.Runtime) {
	main := rt.Main()
	data := rt.NewVar()
	flag := rt.NewVolatile()
	writer := main.Go(func(w *rtsim.Thread) {
		data.Store(w, 42)
		flag.Store(w, 1)
	})
	reader := main.Go(func(w *rtsim.Thread) {
		if flag.Load(w) == 1 {
			data.Load(w)
		}
	})
	main.Join(writer)
	main.Join(reader)
}

// messageUnguarded: the reader ignores the flag's value and reads the data
// unconditionally. Whether that is a race depends on the schedule: if the
// flag load lands after the writer's flag store, the volatile edge orders
// the accesses; if it lands before, nothing does.
func messageUnguarded(rt *rtsim.Runtime) {
	main := rt.Main()
	data := rt.NewVar()
	flag := rt.NewVolatile()
	writer := main.Go(func(w *rtsim.Thread) {
		data.Store(w, 42)
		flag.Store(w, 1)
	})
	reader := main.Go(func(w *rtsim.Thread) {
		flag.Load(w)
		data.Load(w)
	})
	main.Join(writer)
	main.Join(reader)
}

// lockShuffle: two threads touch two vars under two locks, but each var is
// consistently guarded by its own lock only in one thread — the other
// swaps them. Racy in a schedule-dependent way and a classic lockset
// stress shape.
func lockShuffle(rt *rtsim.Runtime) {
	main := rt.Main()
	x := rt.NewVar()
	y := rt.NewVar()
	a := rt.NewMutex()
	b := rt.NewMutex()
	t1 := main.Go(func(w *rtsim.Thread) {
		a.Lock(w)
		x.Store(w, 1)
		a.Unlock(w)
		b.Lock(w)
		y.Store(w, 1)
		b.Unlock(w)
	})
	t2 := main.Go(func(w *rtsim.Thread) {
		b.Lock(w)
		x.Store(w, 2) // wrong lock for x
		b.Unlock(w)
		a.Lock(w)
		y.Store(w, 2) // wrong lock for y
		a.Unlock(w)
	})
	main.Join(t1)
	main.Join(t2)
}

// barrierPhases: each worker writes its own slot, crosses a barrier, then
// reads its neighbour's slot. Race-free under every schedule — but only
// because the barrier's release edges order the phases, which exercises the
// barrier lowering under control.
func barrierPhases(rt *rtsim.Runtime) {
	const n = 4
	main := rt.Main()
	slots := rt.NewArray(n)
	bar := rt.NewBarrier(n)
	main.Parallel(n, func(w *rtsim.Thread, i int) {
		slots.Store(w, i, int64(i))
		bar.Await(w)
		slots.Load(w, (i+1)%n)
	})
}

// forkJoinTree: a two-level fork/join tree where the grandchildren write
// disjoint slots and ancestors read them only after joining. Race-free;
// exercises nested fork under control.
func forkJoinTree(rt *rtsim.Runtime) {
	main := rt.Main()
	slots := rt.NewArray(4)
	kids := make([]*rtsim.Thread, 2)
	for i := 0; i < 2; i++ {
		i := i
		kids[i] = main.Go(func(w *rtsim.Thread) {
			g0 := w.Go(func(g *rtsim.Thread) { slots.Store(g, 2*i, int64(i)) })
			g1 := w.Go(func(g *rtsim.Thread) { slots.Store(g, 2*i+1, int64(i)) })
			w.Join(g0)
			w.Join(g1)
			slots.Load(w, 2*i)
		})
	}
	for i := 0; i < 2; i++ {
		main.Join(kids[i])
		slots.Load(main, 2*i+1)
	}
}

// onceInit: three threads race to initialize a shared var through Once and
// then read it. Race-free: whichever thread wins, Once's mutual exclusion
// orders the initializing write before every reader.
func onceInit(rt *rtsim.Runtime) {
	main := rt.Main()
	v := rt.NewVar()
	once := rt.NewOnce()
	main.Parallel(3, func(w *rtsim.Thread, i int) {
		once.Do(w, func(t *rtsim.Thread) { v.Store(t, 7) })
		v.Load(w)
	})
}

// condHandoff: a producer/consumer pair over a condition variable with the
// standard predicate loop. Race-free; exercises CondWait's release/
// reacquire cycle in the scheduler.
func condHandoff(rt *rtsim.Runtime) {
	main := rt.Main()
	mu := rt.NewMutex()
	cond := mu.NewCond()
	ready := rt.NewVar()
	data := rt.NewVar()
	consumer := main.Go(func(w *rtsim.Thread) {
		mu.Lock(w)
		for ready.Load(w) == 0 {
			cond.Wait(w)
		}
		data.Load(w)
		mu.Unlock(w)
	})
	producer := main.Go(func(w *rtsim.Thread) {
		mu.Lock(w)
		data.Store(w, 99)
		ready.Store(w, 1)
		cond.Signal(w)
		mu.Unlock(w)
	})
	main.Join(consumer)
	main.Join(producer)
}
