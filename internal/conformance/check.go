package conformance

import (
	"fmt"
	"reflect"
	"sort"

	"repro/internal/core"
	"repro/internal/hb"
	"repro/internal/spec"
	"repro/internal/trace"
)

// CheckTrace runs the full sequential differential comparison on one
// feasible core-language trace: oracle self-agreement (vector-clock pass vs
// order graph), Theorem 3.1 precision of both specification flavors,
// first-report positions of every precise detector against the oracle, and
// rule-count agreement with the specification on race-free traces. A nil
// error means the whole stack agrees on tr.
//
// This is the offline half of the conformance story; Explore applies the
// same verdict comparison per controlled schedule. (It used to live in
// internal/cli as CheckOne; the fuzz driver still calls it through a thin
// wrapper there.)
func CheckTrace(tr trace.Trace) error {
	// Oracle self-agreement.
	vcRaces := hb.Analyze(tr)
	graphRaces := hb.BuildGraph(tr).Races()
	sortPairs(graphRaces)
	got := append([]hb.RacePair(nil), vcRaces.Races...)
	sortPairs(got)
	if !reflect.DeepEqual(got, graphRaces) {
		return fmt.Errorf("oracle algorithms disagree: VC=%v graph=%v", got, graphRaces)
	}
	want := vcRaces.FirstRaceAt()

	// Specification precision, both flavors.
	for _, f := range []spec.Flavor{spec.VerifiedFT, spec.FastTrackOrig} {
		res := spec.Run(f, tr)
		if res.RaceAt != want {
			return fmt.Errorf("%v spec errors at %d, oracle first race at %d", f, res.RaceAt, want)
		}
	}

	// Detector functional correctness.
	specRes := spec.Run(spec.VerifiedFT, tr)
	for _, name := range core.PreciseVariants() {
		d, err := core.New(name, core.DefaultConfig())
		if err != nil {
			return err
		}
		if got := core.FirstReportPosition(d, tr); got != want {
			return fmt.Errorf("%s first report at %d, oracle at %d", name, got, want)
		}
	}
	if want == -1 {
		for _, name := range []string{"vft-v1", "vft-v1.5", "vft-v2", "ft-mutex", "ft-cas"} {
			d, err := core.New(name, core.DefaultConfig())
			if err != nil {
				return err
			}
			core.Replay(d, tr)
			if counts := d.RuleCounts(); counts != specRes.Rules {
				return fmt.Errorf("%s rule counts diverge from spec:\n got %v\nwant %v",
					name, counts, specRes.Rules)
			}
		}
	}
	return nil
}

// Shrink delta-minimizes a diverging trace: it repeatedly removes
// operations (largest chunks first) while the result stays feasible and
// still diverges under CheckTrace, so failures arrive at a human-readable
// size in the vft-race text format. A schedule-found divergence minimizes
// the same way as a sequentially-found one, because a controlled run
// serializes the handlers: replaying its recorded linearization reproduces
// the detector behavior exactly.
func Shrink(tr trace.Trace) trace.Trace {
	diverges := func(t trace.Trace) bool {
		return trace.Validate(t) == nil && CheckTrace(t) != nil
	}
	if !diverges(tr) {
		return tr
	}
	cur := append(trace.Trace(nil), tr...)
	for chunk := len(cur) / 2; chunk >= 1; {
		removedAny := false
		for start := 0; start+chunk <= len(cur); start++ {
			cand := append(append(trace.Trace(nil), cur[:start]...), cur[start+chunk:]...)
			if diverges(cand) {
				cur = cand
				removedAny = true
				start-- // the window now holds new content; retry in place
			}
		}
		if !removedAny {
			chunk /= 2
		}
	}
	return cur
}

func sortPairs(ps []hb.RacePair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Second != ps[j].Second {
			return ps[i].Second < ps[j].Second
		}
		return ps[i].First < ps[j].First
	})
}
