// Package conformance is the executable counterpart of the paper's proof
// for the code this repository actually runs: a replayable cross-detector
// conformance suite over *controlled* schedules.
//
// The CIVL proof certifies the idealized v2 algorithm; the concrete Go
// ports (v1, v1.5, v2, FT-Mutex, FT-CAS) were previously guarded only by
// stress tests under whatever interleavings the Go runtime produced. Here,
// each target program — a re-executed generated trace, a built-in example
// kernel, or a benchmark workload — runs under internal/sched's cooperative
// scheduler, which serializes the simulated threads and drives them with a
// seed-deterministic policy (PCT or random walk). Every explored schedule
// yields an exact event linearization (via core.Recorder), and for that
// linearization the suite cross-checks every precise detector's verdict and
// first-report position against the happens-before oracle of internal/hb.
// Any divergence is delta-minimized into the vft-race text format and
// carries the seed that replays its schedule bit-for-bit.
package conformance

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/hb"
	"repro/internal/rtsim"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Program is one schedulable target: Run drives rt's main thread and
// returns when the program's own structure is complete (forked threads it
// does not join are drained by the controlled runtime's Shutdown).
type Program struct {
	Name string
	Run  func(rt *rtsim.Runtime)
}

// FromTrace reinterprets a feasible core-language trace as a concurrent
// program: each thread of tr becomes a simulated thread executing its
// projection of the trace in program order, with forks, joins, locks and
// accesses mapped onto the runtime simulator. Scheduling it then explores
// *other* feasible interleavings of the same per-thread programs — the
// original trace is the policy-independent witness that at least one
// schedule exists. Join targets forked by a different thread are passed
// through rtsim.Handle, which blocks in the scheduler without adding any
// happens-before edge to the analyzed trace.
//
// FromTrace materializes the trace into per-thread projections up front
// rather than streaming it through rtsim.Replay's bounded demultiplexer.
// That is deliberate: under a controlled scheduler only the turn-holding
// thread runs, and it may be one whose channel the demux has yet to fill
// while the demux is blocked sending to a thread that cannot take its
// turn — bounded backpressure and cooperative turn handoff deadlock.
// Replay therefore rejects controlled runtimes, and controlled exploration
// pays the O(trace) memory for schedule freedom instead.
func FromTrace(name string, tr trace.Trace) (Program, error) {
	perThread := map[epoch.Tid][]trace.Op{}
	nVars, nLocks := 0, 0
	for _, op := range tr {
		if !op.Kind.IsCore() {
			return Program{}, fmt.Errorf("conformance: FromTrace on extended op %v (Desugar first)", op)
		}
		perThread[op.T] = append(perThread[op.T], op)
		if op.IsAccess() && int(op.X)+1 > nVars {
			nVars = int(op.X) + 1
		}
		if (op.Kind == trace.Acquire || op.Kind == trace.Release) && int(op.M)+1 > nLocks {
			nLocks = int(op.M) + 1
		}
	}
	run := func(rt *rtsim.Runtime) {
		vars := make([]*rtsim.Var, nVars)
		for i := range vars {
			vars[i] = rt.NewVar()
		}
		locks := make([]*rtsim.Mutex, nLocks)
		for i := range locks {
			locks[i] = rt.NewMutex()
		}
		// One handle per forked trace thread: the forker publishes the
		// child's rtsim identity, joiners (who may be any thread) fetch
		// it. The mutex only guards the map structure against the race
		// detector; under control the turn already serializes access.
		var mu sync.Mutex
		handles := map[epoch.Tid]*rtsim.Handle{}
		for _, op := range tr {
			if op.Kind == trace.Fork {
				handles[op.U] = rt.NewHandle()
			}
		}
		var exec func(self *rtsim.Thread, ops []trace.Op)
		exec = func(self *rtsim.Thread, ops []trace.Op) {
			for _, op := range ops {
				switch op.Kind {
				case trace.Read:
					vars[op.X].Load(self)
				case trace.Write:
					vars[op.X].Store(self, int64(op.T)+1)
				case trace.Acquire:
					locks[op.M].Lock(self)
				case trace.Release:
					locks[op.M].Unlock(self)
				case trace.Fork:
					u := op.U
					child := self.Go(func(w *rtsim.Thread) { exec(w, perThread[u]) })
					mu.Lock()
					h := handles[u]
					mu.Unlock()
					h.Set(child)
				case trace.Join:
					mu.Lock()
					h := handles[op.U]
					mu.Unlock()
					self.Join(h.Get(self))
				}
			}
		}
		exec(rt.Main(), perThread[0])
	}
	return Program{Name: name, Run: run}, nil
}

// DetectorOutcome is one detector's verdict on one explored schedule.
type DetectorOutcome struct {
	Name string
	// FirstReportAt is the event index (into the recorded linearization)
	// of the detector's first report, -1 if it reported nothing.
	FirstReportAt int
	// Reports is the total number of reports the detector produced.
	Reports int
}

// RunOne executes prog once under a controlled schedule fully determined by
// (policy, seed) and returns the recorded event linearization plus each
// named detector's outcome on exactly that linearization. All detectors
// observe the identical schedule: they ride one rtsim run behind a Tee.
func RunOne(prog Program, policy string, seed uint64, detectors []string) (trace.Trace, []DetectorOutcome, error) {
	pol, err := sched.NewPolicy(policy, seed)
	if err != nil {
		return nil, nil, err
	}
	rec := core.NewRecorder()
	ds := []core.Detector{rec}
	trackers := make([]*core.PosTracker, 0, len(detectors))
	for _, name := range detectors {
		d, err := core.New(name, core.DefaultConfig())
		if err != nil {
			return nil, nil, err
		}
		pt := core.NewPosTracker(d)
		trackers = append(trackers, pt)
		ds = append(ds, pt)
	}
	rt := rtsim.NewControlled(core.NewTee(ds...), sched.New(pol))
	prog.Run(rt)
	rt.Shutdown()

	tr := rec.Trace()
	outs := make([]DetectorOutcome, len(trackers))
	for i, pt := range trackers {
		outs[i] = DetectorOutcome{
			Name:          detectors[i],
			FirstReportAt: pt.FirstReportPos(),
			Reports:       len(pt.Reports()),
		}
	}
	return tr, outs, nil
}

// Options configures an exploration.
type Options struct {
	// Policy is "pct" or "random".
	Policy string
	// Schedules is how many schedules to explore.
	Schedules int
	// SeedBase derives the per-schedule seeds: schedule j runs under
	// ScheduleSeed(SeedBase, j), so any printed seed replays standalone.
	SeedBase uint64
	// Detectors lists the variants to cross-check (default: every
	// precise variant).
	Detectors []string
	// Shrink delta-minimizes divergent linearizations before reporting.
	Shrink bool
}

// DefaultOptions explores 20 PCT schedules per program over all precise
// variants with shrinking on.
func DefaultOptions() Options {
	return Options{Policy: "pct", Schedules: 20, SeedBase: 1, Detectors: core.PreciseVariants(), Shrink: true}
}

// ScheduleSeed derives the seed for schedule index j from a base seed.
func ScheduleSeed(base uint64, j int) uint64 {
	return sched.SplitMix64(base ^ sched.SplitMix64(uint64(j)+1))
}

// Divergence is one detector/oracle disagreement on one explored schedule.
type Divergence struct {
	Program  string
	Detector string
	Policy   string
	// Seed replays the schedule: RunOne(prog, Policy, Seed, ...) yields
	// Trace again, bit for bit.
	Seed uint64
	// Want and Got are the oracle's and the detector's first-race
	// positions in the recorded linearization (-1 = no race).
	Want, Got int
	// Trace is the recorded linearization, delta-minimized when
	// Options.Shrink is set.
	Trace trace.Trace
}

func (d Divergence) String() string {
	return fmt.Sprintf("%s under %s(seed=%#x): %s first report at %d, oracle at %d",
		d.Program, d.Policy, d.Seed, d.Detector, d.Got, d.Want)
}

// Summary aggregates one program's exploration.
type Summary struct {
	Program   string
	Policy    string
	Schedules int
	// Distinct counts distinct event linearizations among the explored
	// schedules — a direct measure of how much of the schedule space the
	// policy actually reached.
	Distinct int
	// Racy counts schedules whose linearization contains a race per the
	// oracle (schedule-dependent for racy programs: the point of
	// exploring on purpose).
	Racy int
	// Events is the total number of recorded events across schedules.
	Events int
	// Divergences lists every detector/oracle disagreement found.
	Divergences []Divergence
}

// Explore runs prog under opts.Schedules controlled schedules and
// cross-checks every detector's verdict and first-report position against
// the happens-before oracle on each recorded linearization. The returned
// summary is deterministic in (prog, opts).
func Explore(prog Program, opts Options) (*Summary, error) {
	if opts.Policy == "" {
		opts.Policy = "pct"
	}
	dets := opts.Detectors
	if dets == nil {
		dets = core.PreciseVariants()
	}
	sum := &Summary{Program: prog.Name, Policy: opts.Policy, Schedules: opts.Schedules}
	seen := map[string]bool{}
	for j := 0; j < opts.Schedules; j++ {
		seed := ScheduleSeed(opts.SeedBase, j)
		tr, outs, err := RunOne(prog, opts.Policy, seed, dets)
		if err != nil {
			return nil, err
		}
		sum.Events += len(tr)
		if key := traceKey(tr); !seen[key] {
			seen[key] = true
			sum.Distinct++
		}
		oracle := hb.Analyze(tr)
		want := oracle.FirstRaceAt()
		if oracle.HasRace() {
			sum.Racy++
		}
		for _, out := range outs {
			if out.FirstReportAt != want {
				min := tr
				if opts.Shrink {
					min = Shrink(tr)
				}
				sum.Divergences = append(sum.Divergences, Divergence{
					Program:  prog.Name,
					Detector: out.Name,
					Policy:   opts.Policy,
					Seed:     seed,
					Want:     want,
					Got:      out.FirstReportAt,
					Trace:    min,
				})
			}
		}
	}
	return sum, nil
}

// traceKey renders a compact identity for distinct-linearization counting.
func traceKey(tr trace.Trace) string {
	var b strings.Builder
	for _, op := range tr {
		b.WriteString(op.String())
		b.WriteByte('\n')
	}
	return b.String()
}
