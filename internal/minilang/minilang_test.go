package minilang

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

func runSrc(t *testing.T, src string) ([]core.Report, string, error) {
	t.Helper()
	d, err := core.New("vft-v2", core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	reports, execErr := Run(src, d, &out)
	return reports, out.String(), execErr
}

func TestArithmeticAndControlFlow(t *testing.T) {
	src := `
shared x
local i
local sum
i = 0
while i < 5 {
    sum = sum + i * 2
    i = i + 1
}
if sum == 20 { print sum } else { print 0 - 1 }
x = sum % 7
print x
print (1 + 2) * 3 - 4 / 2
print 1 <= 2 && !(3 == 4) || 0
`
	reports, out, err := runSrc(t, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Fatalf("reports: %v", reports)
	}
	want := "20\n6\n7\n1\n"
	if out != want {
		t.Fatalf("output %q, want %q", out, want)
	}
}

func TestRacyProgramDetected(t *testing.T) {
	src := `
shared counter
local i
spawn {
    local j
    j = 0
    while j < 50 {
        counter = counter + 1
        j = j + 1
    }
}
i = 0
while i < 50 {
    counter = counter + 1
    i = i + 1
}
wait
`
	reports, _, err := runSrc(t, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("unsynchronized counter not reported")
	}
}

func TestLockedProgramClean(t *testing.T) {
	src := `
shared counter
lock m
local i
spawn {
    local j
    j = 0
    while j < 50 {
        acquire m
        counter = counter + 1
        release m
        j = j + 1
    }
}
i = 0
while i < 50 {
    acquire m
    counter = counter + 1
    release m
    i = i + 1
}
wait
print counter
`
	reports, out, err := runSrc(t, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Fatalf("false positives: %v", reports)
	}
	if out != "100\n" {
		t.Fatalf("counter = %q, want 100", out)
	}
}

func TestVolatilePublication(t *testing.T) {
	src := `
shared data
volatile ready
spawn {
    local seen
    seen = 0
    while seen == 0 {
        seen = ready
    }
    print data
}
data = 42
ready = 1
wait
`
	reports, out, err := runSrc(t, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Fatalf("volatile publication misreported: %v", reports)
	}
	if out != "42\n" {
		t.Fatalf("output %q", out)
	}
}

func TestBarrierPhases(t *testing.T) {
	src := `
shared a, b
barrier bar 2
spawn {
    a = 1
    await bar
    print b
    await bar
}
b = 2
await bar
print a
await bar
wait
`
	reports, out, err := runSrc(t, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Fatalf("barrier misreported: %v", reports)
	}
	// Output order between threads is scheduling-dependent; both lines
	// must appear.
	if !strings.Contains(out, "1") || !strings.Contains(out, "2") {
		t.Fatalf("output %q", out)
	}
}

func TestForkJoinOrdering(t *testing.T) {
	src := `
shared x
x = 1
spawn { x = x + 1 }
wait
x = x + 1
print x
`
	reports, out, err := runSrc(t, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Fatalf("fork/join misreported: %v", reports)
	}
	if out != "3\n" {
		t.Fatalf("output %q", out)
	}
}

func TestLocalsAreCopiedIntoSpawn(t *testing.T) {
	src := `
shared result
local v
v = 7
spawn {
    v = v + 1
    result = v
}
wait
v = v + 100
print v
print result
`
	reports, out, err := runSrc(t, src)
	if err != nil {
		t.Fatal(err)
	}
	// Locals are not shared: no race, and the parent's v is unaffected by
	// the child's increment.
	if len(reports) != 0 {
		t.Fatalf("locals reported as racy: %v", reports)
	}
	if out != "107\n8\n" {
		t.Fatalf("output %q", out)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"shared",                     // missing name
		"x = ",                       // missing expression
		"if 1 { print 1",             // unterminated block
		"acquire",                    // missing lock name
		"barrier b 0",                // bad party count
		"spawn print 1",              // missing brace
		"x = 1 +",                    // dangling operator
		"x = (1",                     // unbalanced paren
		"print 99999999999999999999", // overflow
		"@",                          // bad character
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"x = 1", "undeclared variable"},
		{"print y", "undeclared variable"},
		{"acquire m", "undeclared lock"},
		{"await b", "undeclared barrier"},
		{"local a\na = 1 / 0", "division by zero"},
		{"local a\na = 1 % 0", "modulo by zero"},
		{"shared x\nlock x", "redeclared"},
	}
	for _, tc := range cases {
		_, _, err := runSrc(t, tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Run(%q): err = %v, want containing %q", tc.src, err, tc.want)
		}
	}
}

// A runtime error inside a spawned thread surfaces after joining.
func TestSpawnedThreadErrorSurfaces(t *testing.T) {
	src := `
spawn { print nosuchvar }
wait
`
	_, _, err := runSrc(t, src)
	if err == nil || !strings.Contains(err.Error(), "undeclared variable") {
		t.Fatalf("err = %v", err)
	}
}

// The interpreter works identically uninstrumented (nil detector).
func TestUninstrumentedRun(t *testing.T) {
	var out bytes.Buffer
	reports, err := Run("shared x\nx = 41\nx = x + 1\nprint x", nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if reports != nil {
		t.Fatalf("reports from a nil detector: %v", reports)
	}
	if out.String() != "42\n" {
		t.Fatalf("output %q", out.String())
	}
}

// Nested spawns: a child spawning a grandchild, all joined transitively.
func TestNestedSpawn(t *testing.T) {
	src := `
shared x
spawn {
    x = x + 1
    spawn { x = x + 1 }
    wait
}
wait
x = x + 1
print x
`
	reports, out, err := runSrc(t, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Fatalf("nested spawn misreported: %v", reports)
	}
	if out != "3\n" {
		t.Fatalf("output %q", out)
	}
}

// Every precise detector agrees on minilang programs.
func TestAllDetectorsOnMiniProgram(t *testing.T) {
	racy := "shared x\nspawn { x = 1 }\nx = 2\nwait"
	clean := "shared x\nlock m\nspawn { acquire m\nx = 1\nrelease m }\nacquire m\nx = 2\nrelease m\nwait"
	for _, name := range core.PreciseVariants() {
		d, err := core.New(name, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		var sink bytes.Buffer
		reports, err := Run(racy, d, &sink)
		if err != nil {
			t.Fatal(err)
		}
		if len(reports) == 0 {
			t.Errorf("%s missed the race", name)
		}
		d2, _ := core.New(name, core.DefaultConfig())
		reports, err = Run(clean, d2, &sink)
		if err != nil {
			t.Fatal(err)
		}
		if len(reports) != 0 {
			t.Errorf("%s false positive: %v", name, reports[0])
		}
	}
}

// BenchmarkInterpreter measures interpretation overhead with and without a
// detector attached — the minilang analogue of a Table 1 cell.
func BenchmarkInterpreter(b *testing.B) {
	src := `
shared total
lock m
local i
spawn {
    local j
    j = 0
    while j < 200 {
        acquire m
        total = total + 1
        release m
        j = j + 1
    }
}
i = 0
while i < 200 {
    acquire m
    total = total + 1
    release m
    i = i + 1
}
wait
`
	prog, err := Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, det := range []string{"none", "vft-v1", "vft-v2"} {
		det := det
		b.Run(det, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var d core.Detector
				if det != "none" {
					d, _ = core.New(det, core.DefaultConfig())
				}
				var sink bytes.Buffer
				if _, err := Exec(prog, d, &sink); err != nil {
					b.Fatal(err)
				}
				if d != nil && len(d.Reports()) != 0 {
					b.Fatal("unexpected race")
				}
			}
		})
	}
}
