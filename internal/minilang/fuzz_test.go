package minilang

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse drives the lexer and parser with arbitrary source text. The
// property is totality: Parse must return a value or an error, never panic
// or hang, on any input — the CLI feeds it user-controlled files. Seeds
// are the shipped example programs plus inputs aimed at the tokenizer's
// and parser's edges (comments, deep nesting, unterminated constructs,
// non-ASCII bytes).
func FuzzParse(f *testing.F) {
	examples, err := filepath.Glob(filepath.Join("..", "..", "examples", "minilang", "*.vft"))
	if err != nil {
		f.Fatal(err)
	}
	if len(examples) == 0 {
		f.Fatal("no example programs found for the seed corpus")
	}
	for _, path := range examples {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	for _, seed := range []string{
		"",
		"shared x\nx = 1\n",
		"shared x\nlock m\nspawn { acquire m\nx = x + 1\nrelease m\n}\n",
		"while 1 { }",
		"spawn { spawn { spawn { } } }",
		"# comment only\n",
		"shared \xff\xfe\n",
		"if x < { }",
		"local i\ni = ((((1))))",
		"acquire",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err == nil && prog == nil {
			t.Fatal("Parse returned nil program and nil error")
		}
	})
}
