package minilang

import (
	"fmt"
	"strconv"
)

// Program is a parsed minilang program: the declared entities and the main
// thread's body.
type Program struct {
	Shared    []string
	Locks     []string
	Volatiles []string
	Barriers  []BarrierDecl
	Body      []Stmt
}

// BarrierDecl declares a barrier and its party count.
type BarrierDecl struct {
	Name    string
	Parties int
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

type (
	// LocalStmt declares a thread-local variable in the current scope.
	LocalStmt struct {
		Name string
		Line int
		Col  int
	}
	// AssignStmt assigns an expression to a shared, volatile or local
	// variable.
	AssignStmt struct {
		Name string
		Expr Expr
		Line int
		Col  int
	}
	// AcquireStmt acquires a lock.
	AcquireStmt struct {
		Lock string
		Line int
		Col  int
	}
	// ReleaseStmt releases a lock.
	ReleaseStmt struct {
		Lock string
		Line int
		Col  int
	}
	// AwaitStmt arrives at a barrier.
	AwaitStmt struct {
		Barrier string
		Line    int
		Col     int
	}
	// SpawnStmt runs a block in a new thread.
	SpawnStmt struct {
		Body []Stmt
		Line int
		Col  int
	}
	// WaitStmt joins every thread spawned so far by the current thread.
	WaitStmt struct {
		Line int
		Col  int
	}
	// PrintStmt evaluates and prints an expression.
	PrintStmt struct {
		Expr Expr
		Line int
		Col  int
	}
	// IfStmt is a conditional with an optional else block.
	IfStmt struct {
		Cond Expr
		Then []Stmt
		Else []Stmt
		Line int
		Col  int
	}
	// WhileStmt is a loop.
	WhileStmt struct {
		Cond Expr
		Body []Stmt
		Line int
		Col  int
	}
)

func (*LocalStmt) stmtNode()   {}
func (*AssignStmt) stmtNode()  {}
func (*AcquireStmt) stmtNode() {}
func (*ReleaseStmt) stmtNode() {}
func (*AwaitStmt) stmtNode()   {}
func (*SpawnStmt) stmtNode()   {}
func (*WaitStmt) stmtNode()    {}
func (*PrintStmt) stmtNode()   {}
func (*IfStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()   {}

// Expr is an expression node.
type Expr interface{ exprNode() }

type (
	// NumExpr is an integer literal.
	NumExpr struct{ Value int64 }
	// VarExpr reads a variable (shared, volatile or local).
	VarExpr struct {
		Name string
		Line int
		Col  int
	}
	// BinExpr applies a binary operator.
	BinExpr struct {
		Op   string
		L, R Expr
	}
	// UnExpr applies a unary operator (! or -).
	UnExpr struct {
		Op string
		E  Expr
	}
)

func (*NumExpr) exprNode() {}
func (*VarExpr) exprNode() {}
func (*BinExpr) exprNode() {}
func (*UnExpr) exprNode()  {}

// Parse parses source text into a Program.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	if err := p.declarations(prog); err != nil {
		return nil, err
	}
	body, err := p.block(false)
	if err != nil {
		return nil, err
	}
	prog.Body = body
	if !p.at(tokEOF, "") {
		return nil, p.errf("unexpected %q after program body", p.cur().text)
	}
	return prog, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) advance()    { p.pos++ }
func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text, what string) (token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		return t, p.errf("expected %s, got %q", what, t.text)
	}
	p.advance()
	return t, nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("minilang: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

// declarations parses the leading shared/lock/volatile/barrier block.
func (p *parser) declarations(prog *Program) error {
	for {
		switch {
		case p.at(tokIdent, "shared"):
			p.advance()
			names, err := p.identList()
			if err != nil {
				return err
			}
			prog.Shared = append(prog.Shared, names...)
		case p.at(tokIdent, "lock"):
			p.advance()
			names, err := p.identList()
			if err != nil {
				return err
			}
			prog.Locks = append(prog.Locks, names...)
		case p.at(tokIdent, "volatile"):
			p.advance()
			names, err := p.identList()
			if err != nil {
				return err
			}
			prog.Volatiles = append(prog.Volatiles, names...)
		case p.at(tokIdent, "barrier"):
			p.advance()
			name, err := p.expect(tokIdent, "", "barrier name")
			if err != nil {
				return err
			}
			n, err := p.expect(tokNumber, "", "barrier party count")
			if err != nil {
				return err
			}
			parties, _ := strconv.Atoi(n.text)
			if parties < 1 {
				return p.errf("barrier %s: party count must be >= 1", name.text)
			}
			prog.Barriers = append(prog.Barriers, BarrierDecl{Name: name.text, Parties: parties})
		default:
			return nil
		}
	}
}

func (p *parser) identList() ([]string, error) {
	var out []string
	for {
		t, err := p.expect(tokIdent, "", "identifier")
		if err != nil {
			return nil, err
		}
		out = append(out, t.text)
		if !p.accept(tokPunct, ",") {
			return out, nil
		}
	}
}

// block parses statements; braced=true consumes a trailing '}'.
func (p *parser) block(braced bool) ([]Stmt, error) {
	var out []Stmt
	for {
		if braced && p.accept(tokPunct, "}") {
			return out, nil
		}
		if p.at(tokEOF, "") {
			if braced {
				return nil, p.errf("unexpected end of input inside block")
			}
			return out, nil
		}
		if !braced && p.at(tokPunct, "}") {
			return out, nil
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *parser) statement() (Stmt, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return nil, p.errf("expected a statement, got %q", t.text)
	}
	line, col := t.line, t.col
	switch t.text {
	case "local":
		p.advance()
		name, err := p.expect(tokIdent, "", "local variable name")
		if err != nil {
			return nil, err
		}
		return &LocalStmt{Name: name.text, Line: line, Col: col}, nil
	case "acquire", "release":
		p.advance()
		name, err := p.expect(tokIdent, "", "lock name")
		if err != nil {
			return nil, err
		}
		if t.text == "acquire" {
			return &AcquireStmt{Lock: name.text, Line: line, Col: col}, nil
		}
		return &ReleaseStmt{Lock: name.text, Line: line, Col: col}, nil
	case "await":
		p.advance()
		name, err := p.expect(tokIdent, "", "barrier name")
		if err != nil {
			return nil, err
		}
		return &AwaitStmt{Barrier: name.text, Line: line, Col: col}, nil
	case "spawn":
		p.advance()
		if _, err := p.expect(tokPunct, "{", "'{' after spawn"); err != nil {
			return nil, err
		}
		body, err := p.block(true)
		if err != nil {
			return nil, err
		}
		return &SpawnStmt{Body: body, Line: line, Col: col}, nil
	case "wait":
		p.advance()
		return &WaitStmt{Line: line, Col: col}, nil
	case "print":
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &PrintStmt{Expr: e, Line: line, Col: col}, nil
	case "if":
		p.advance()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "{", "'{' after if condition"); err != nil {
			return nil, err
		}
		then, err := p.block(true)
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.accept(tokIdent, "else") {
			if _, err := p.expect(tokPunct, "{", "'{' after else"); err != nil {
				return nil, err
			}
			els, err = p.block(true)
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els, Line: line, Col: col}, nil
	case "while":
		p.advance()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "{", "'{' after while condition"); err != nil {
			return nil, err
		}
		body, err := p.block(true)
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: line, Col: col}, nil
	default:
		// assignment: ident = expr
		p.advance()
		if _, err := p.expect(tokPunct, "=", "'=' in assignment"); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Name: t.text, Expr: e, Line: line, Col: col}, nil
	}
}

// Expression grammar (lowest to highest precedence):
//
//	or   := and ('||' and)*
//	and  := cmp ('&&' cmp)*
//	cmp  := add (('=='|'!='|'<'|'<='|'>'|'>=') add)?
//	add  := mul (('+'|'-') mul)*
//	mul  := unary (('*'|'/'|'%') unary)*
//	unary:= ('!'|'-') unary | primary
//	prim := number | ident | '(' or ')'
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	return p.binLevel([]string{"||"}, p.andExpr)
}

func (p *parser) andExpr() (Expr, error) {
	return p.binLevel([]string{"&&"}, p.cmpExpr)
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"==", "!=", "<=", ">=", "<", ">"} {
		if p.at(tokPunct, op) {
			p.advance()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &BinExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	return p.binLevel([]string{"+", "-"}, p.mulExpr)
}

func (p *parser) mulExpr() (Expr, error) {
	return p.binLevel([]string{"*", "/", "%"}, p.unaryExpr)
}

func (p *parser) binLevel(ops []string, next func() (Expr, error)) (Expr, error) {
	l, err := next()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range ops {
			if p.at(tokPunct, op) {
				p.advance()
				r, err := next()
				if err != nil {
					return nil, err
				}
				l = &BinExpr{Op: op, L: l, R: r}
				matched = true
				break
			}
		}
		if !matched {
			return l, nil
		}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.at(tokPunct, "!") || p.at(tokPunct, "-") {
		op := p.cur().text
		p.advance()
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: op, E: e}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.advance()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &NumExpr{Value: v}, nil
	case t.kind == tokIdent:
		p.advance()
		return &VarExpr{Name: t.text, Line: t.line, Col: t.col}, nil
	case p.accept(tokPunct, "("):
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")", "')'"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf("expected an expression, got %q", t.text)
	}
}
