package minilang

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/rtsim"
)

// Run parses and executes src with its events delivered to detector d (nil
// for an uninstrumented run); prints go to out. It returns the detector's
// reports and the first runtime error, if any (runtime errors in spawned
// threads abort the program after all threads are joined). Trailing rtsim
// options configure the runtime the program executes on (e.g.
// rtsim.WithMetrics to count its events).
func Run(src string, d core.Detector, out io.Writer, opts ...rtsim.Option) ([]core.Report, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Exec(prog, d, out, opts...)
}

// Exec executes a parsed program.
func Exec(prog *Program, d core.Detector, out io.Writer, opts ...rtsim.Option) ([]core.Report, error) {
	rt := rtsim.New(d, opts...)
	if err := ExecOn(prog, rt, out); err != nil {
		return rt.Reports(), err
	}
	return rt.Reports(), nil
}

// ExecOn executes a parsed program on a caller-supplied runtime — in
// particular one built with rtsim.NewControlled, which is how the
// cross-validation harness explores a program's schedule space (the
// Exec/Run entry points always run free). The caller owns the runtime:
// detector reports stay on rt, and for controlled runtimes the caller must
// still call rt.Shutdown after ExecOn returns.
func ExecOn(prog *Program, rt *rtsim.Runtime, out io.Writer) error {
	env, err := buildEnv(prog, rt, out)
	if err != nil {
		return err
	}
	th := &threadCtx{env: env, thread: rt.Main(), locals: map[string]int64{}}
	execErr := th.block(prog.Body)
	// Join every still-outstanding thread so the program quiesces even on
	// error paths.
	th.joinAll()
	if execErr == nil {
		execErr = env.firstError()
	}
	return execErr
}

// env is the program-wide environment: declared entities and error
// collection.
type env struct {
	rt        *rtsim.Runtime
	out       io.Writer
	shared    map[string]*rtsim.Var
	volatiles map[string]*rtsim.Volatile
	locks     map[string]*rtsim.Mutex
	barriers  map[string]*rtsim.Barrier

	mu   sync.Mutex
	errs []error
}

func buildEnv(prog *Program, rt *rtsim.Runtime, out io.Writer) (*env, error) {
	e := &env{
		rt: rt, out: out,
		shared:    map[string]*rtsim.Var{},
		volatiles: map[string]*rtsim.Volatile{},
		locks:     map[string]*rtsim.Mutex{},
		barriers:  map[string]*rtsim.Barrier{},
	}
	seen := map[string]string{}
	declare := func(name, kind string) error {
		if prev, ok := seen[name]; ok {
			return fmt.Errorf("minilang: %s %q redeclared (previously a %s)", kind, name, prev)
		}
		seen[name] = kind
		return nil
	}
	// Deterministic id assignment: sorted within each declaration class.
	sorted := func(names []string) []string {
		out := append([]string(nil), names...)
		sort.Strings(out)
		return out
	}
	for _, n := range sorted(prog.Shared) {
		if err := declare(n, "shared"); err != nil {
			return nil, err
		}
		e.shared[n] = rt.NewVar()
	}
	for _, n := range sorted(prog.Volatiles) {
		if err := declare(n, "volatile"); err != nil {
			return nil, err
		}
		e.volatiles[n] = rt.NewVolatile()
	}
	for _, n := range sorted(prog.Locks) {
		if err := declare(n, "lock"); err != nil {
			return nil, err
		}
		e.locks[n] = rt.NewMutex()
	}
	for _, b := range prog.Barriers {
		if err := declare(b.Name, "barrier"); err != nil {
			return nil, err
		}
		e.barriers[b.Name] = rt.NewBarrier(b.Parties)
	}
	return e, nil
}

func (e *env) report(err error) {
	e.mu.Lock()
	e.errs = append(e.errs, err)
	e.mu.Unlock()
}

func (e *env) firstError() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.errs) > 0 {
		return e.errs[0]
	}
	return nil
}

// threadCtx is one executing thread: its rtsim identity, locals and
// outstanding children.
type threadCtx struct {
	env      *env
	thread   *rtsim.Thread
	locals   map[string]int64
	children []*rtsim.Thread
}

func (t *threadCtx) errf(line int, format string, args ...any) error {
	return fmt.Errorf("minilang: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (t *threadCtx) joinAll() {
	for _, c := range t.children {
		t.thread.Join(c)
	}
	t.children = nil
}

func (t *threadCtx) block(stmts []Stmt) error {
	for _, s := range stmts {
		if err := t.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (t *threadCtx) stmt(s Stmt) error {
	switch s := s.(type) {
	case *LocalStmt:
		t.locals[s.Name] = 0
		return nil
	case *AssignStmt:
		v, err := t.eval(s.Expr)
		if err != nil {
			return err
		}
		return t.assign(s.Name, v, s.Line)
	case *AcquireStmt:
		m, ok := t.env.locks[s.Lock]
		if !ok {
			return t.errf(s.Line, "undeclared lock %q", s.Lock)
		}
		m.Lock(t.thread)
		return nil
	case *ReleaseStmt:
		m, ok := t.env.locks[s.Lock]
		if !ok {
			return t.errf(s.Line, "undeclared lock %q", s.Lock)
		}
		m.Unlock(t.thread)
		return nil
	case *AwaitStmt:
		b, ok := t.env.barriers[s.Barrier]
		if !ok {
			return t.errf(s.Line, "undeclared barrier %q", s.Barrier)
		}
		b.Await(t.thread)
		return nil
	case *SpawnStmt:
		// Children copy the parent's locals at spawn time: locals are
		// never shared between threads (that is what shared is for).
		snapshot := make(map[string]int64, len(t.locals))
		for k, v := range t.locals {
			snapshot[k] = v
		}
		child := t.thread.Go(func(w *rtsim.Thread) {
			ct := &threadCtx{env: t.env, thread: w, locals: snapshot}
			if err := ct.block(s.Body); err != nil {
				t.env.report(err)
			}
			ct.joinAll()
		})
		t.children = append(t.children, child)
		return nil
	case *WaitStmt:
		t.joinAll()
		return nil
	case *PrintStmt:
		v, err := t.eval(s.Expr)
		if err != nil {
			return err
		}
		fmt.Fprintln(t.env.out, v)
		return nil
	case *IfStmt:
		c, err := t.eval(s.Cond)
		if err != nil {
			return err
		}
		if c != 0 {
			return t.block(s.Then)
		}
		return t.block(s.Else)
	case *WhileStmt:
		for {
			c, err := t.eval(s.Cond)
			if err != nil {
				return err
			}
			if c == 0 {
				return nil
			}
			if err := t.block(s.Body); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("minilang: unknown statement %T", s)
	}
}

// assign resolves a name (locals shadow shared and volatiles) and stores.
func (t *threadCtx) assign(name string, v int64, line int) error {
	if _, ok := t.locals[name]; ok {
		t.locals[name] = v
		return nil
	}
	if x, ok := t.env.shared[name]; ok {
		x.Store(t.thread, v)
		return nil
	}
	if vol, ok := t.env.volatiles[name]; ok {
		vol.Store(t.thread, v)
		return nil
	}
	return t.errf(line, "assignment to undeclared variable %q", name)
}

func (t *threadCtx) eval(e Expr) (int64, error) {
	switch e := e.(type) {
	case *NumExpr:
		return e.Value, nil
	case *VarExpr:
		if v, ok := t.locals[e.Name]; ok {
			return v, nil
		}
		if x, ok := t.env.shared[e.Name]; ok {
			return x.Load(t.thread), nil
		}
		if vol, ok := t.env.volatiles[e.Name]; ok {
			return vol.Load(t.thread), nil
		}
		return 0, t.errf(e.Line, "undeclared variable %q", e.Name)
	case *UnExpr:
		v, err := t.eval(e.E)
		if err != nil {
			return 0, err
		}
		if e.Op == "-" {
			return -v, nil
		}
		if v == 0 {
			return 1, nil
		}
		return 0, nil
	case *BinExpr:
		l, err := t.eval(e.L)
		if err != nil {
			return 0, err
		}
		// Short-circuit the logical operators.
		switch e.Op {
		case "&&":
			if l == 0 {
				return 0, nil
			}
			r, err := t.eval(e.R)
			if err != nil {
				return 0, err
			}
			return boolToInt(r != 0), nil
		case "||":
			if l != 0 {
				return 1, nil
			}
			r, err := t.eval(e.R)
			if err != nil {
				return 0, err
			}
			return boolToInt(r != 0), nil
		}
		r, err := t.eval(e.R)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, fmt.Errorf("minilang: division by zero")
			}
			return l / r, nil
		case "%":
			if r == 0 {
				return 0, fmt.Errorf("minilang: modulo by zero")
			}
			return l % r, nil
		case "==":
			return boolToInt(l == r), nil
		case "!=":
			return boolToInt(l != r), nil
		case "<":
			return boolToInt(l < r), nil
		case "<=":
			return boolToInt(l <= r), nil
		case ">":
			return boolToInt(l > r), nil
		case ">=":
			return boolToInt(l >= r), nil
		default:
			return 0, fmt.Errorf("minilang: unknown operator %q", e.Op)
		}
	default:
		return 0, fmt.Errorf("minilang: unknown expression %T", e)
	}
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
