// Package minilang implements a small concurrent imperative language and
// an instrumenting interpreter: programs written as source text execute on
// real goroutines with every shared-memory and synchronization operation
// routed through a race detector via the rtsim runtime.
//
// This is the repository's analogue of RoadRunner's role for the paper's
// Java artifact: RoadRunner takes a *compiled target program* and inserts
// instrumentation that feeds the analysis (§7); minilang takes a *source
// program* and interprets it with the same event discipline. It exists so
// that racy and race-free target programs can be written, shared and
// checked without writing Go against the runtime API — see cmd/vft-run.
//
// The language:
//
//	# declarations (top level only)
//	shared x, y          # shared int64 variables (instrumented, zero-init)
//	lock m               # mutexes
//	volatile flag        # volatile int64 locations (ordering, no races)
//	barrier b 4          # a cyclic barrier with a fixed party count
//
//	# statements
//	local t              # thread-local variable (fresh per scope)
//	x = t + 2 * y        # assignment; shared reads/writes are instrumented
//	acquire m            # lock / unlock
//	release m
//	await b              # barrier arrival
//	spawn { ... }        # run a block in a new thread
//	wait                 # join every thread this thread has spawned
//	print x + 1          # evaluate and print
//	if e { ... } else { ... }
//	while e { ... }
//
// Expressions: integer literals, variables, + - * / %, comparisons
// (== != < <= > >=), && || !, parentheses. Non-zero is true. Locals are
// copied into a spawned thread at spawn time (threads do not share
// locals — sharing is what the shared declarations are for).
package minilang

import (
	"fmt"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct // single- or double-rune operators and braces
)

type token struct {
	kind tokKind
	text string
	line int
	col  int // 1-based rune column of the token's first rune
}

// lexer tokenizes source text; '#' starts a line comment.
type lexer struct {
	src       []rune
	pos       int
	line      int
	lineStart int // rune index of the current line's first rune
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1}
}

// col is the 1-based column of rune index pos on the current line.
func (l *lexer) col(pos int) int { return pos - l.lineStart + 1 }

// twoRune operators recognized by the lexer.
var twoRune = map[string]bool{
	"==": true, "!=": true, "<=": true, ">=": true, "&&": true, "||": true,
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
			l.lineStart = l.pos
		case unicode.IsSpace(c):
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line, col: l.col(l.pos)}, nil

scan:
	c := l.src[l.pos]
	start := l.pos
	startCol := l.col(start)
	switch {
	case unicode.IsLetter(c) || c == '_':
		for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
			l.pos++
		}
		return token{kind: tokIdent, text: string(l.src[start:l.pos]), line: l.line, col: startCol}, nil
	case unicode.IsDigit(c):
		for l.pos < len(l.src) && unicode.IsDigit(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokNumber, text: string(l.src[start:l.pos]), line: l.line, col: startCol}, nil
	default:
		if l.pos+1 < len(l.src) {
			two := string(l.src[l.pos : l.pos+2])
			if twoRune[two] {
				l.pos += 2
				return token{kind: tokPunct, text: two, line: l.line, col: startCol}, nil
			}
		}
		switch c {
		case '{', '}', '(', ')', '=', '+', '-', '*', '/', '%', '<', '>', ',', '!':
			l.pos++
			return token{kind: tokPunct, text: string(c), line: l.line, col: startCol}, nil
		}
		return token{}, fmt.Errorf("minilang: line %d: unexpected character %q", l.line, string(c))
	}
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
