package minilang

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenSource generates a random minilang program as source text, a
// deterministic function of seed. It is the corpus generator for the
// static/dynamic cross-validation harness (internal/staticrace/crosscheck),
// so every generated program is safe to explore under *any* controlled
// schedule:
//
//   - all loops are bounded counting loops over thread-local counters
//     (no spin loops, which can livelock a PCT-controlled schedule once
//     its priority change points are exhausted),
//   - locks are acquired one at a time and released in the same segment
//     (no nesting, no deadlock),
//   - barriers, when used, are awaited the same fixed number of times by
//     exactly the declared number of parties, unconditionally and with
//     no lock held, with every party spawned before the first arrival,
//   - every thread spawned is joined (`wait`) before main exits, and no
//     expression divides.
//
// Races are intentional and seed-dependent: some programs discipline
// every access with a per-variable lock, others mix locked, unlocked and
// barrier-phased accesses, and some spawn workers inside a loop (the
// multi-thread self-race shape).
func GenSource(seed int64) string {
	g := &pgen{rng: rand.New(rand.NewSource(seed))}
	return g.program()
}

type pgen struct {
	rng    *rand.Rand
	b      strings.Builder
	shared []string
	locks  []string
	vols   []string
	// disciplined: every access to shared[i] holds locks[i%len(locks)].
	disciplined bool
	tmpCount    int
}

func (g *pgen) intn(n int) int { return g.rng.Intn(n) }

func (g *pgen) pf(format string, args ...any) {
	fmt.Fprintf(&g.b, format, args...)
}

func (g *pgen) program() string {
	nShared := 1 + g.intn(3)
	mode := g.intn(4) // 0,1: locks/plain; 2: barrier phases; 3: spawn-in-loop
	nThreads := 2 + g.intn(2)
	if mode == 2 {
		// Phase ownership stays race-free when vars and parties line up.
		nShared = nThreads
	}
	for i := 0; i < nShared; i++ {
		g.shared = append(g.shared, fmt.Sprintf("x%d", i))
	}
	g.pf("shared %s\n", strings.Join(g.shared, ", "))
	nLocks := 1 + g.intn(2)
	for i := 0; i < nLocks; i++ {
		g.locks = append(g.locks, fmt.Sprintf("m%d", i))
	}
	g.pf("lock %s\n", strings.Join(g.locks, ", "))
	if g.intn(3) == 0 {
		g.vols = []string{"v0"}
		g.pf("volatile v0\n")
	}
	g.disciplined = g.intn(3) == 0

	switch mode {
	case 2:
		g.barrierProgram(nThreads)
	case 3:
		g.loopSpawnProgram()
	default:
		g.forkJoinProgram(nThreads)
	}
	return g.b.String()
}

// forkJoinProgram: main spawns workers, optionally works itself, joins
// them (sometimes in the middle, so post-join accesses are ordered), and
// prints a result.
func (g *pgen) forkJoinProgram(nThreads int) {
	for i := 1; i < nThreads; i++ {
		g.pf("spawn {\n")
		g.body("    ", 1+g.intn(3))
		g.pf("}\n")
	}
	if g.intn(2) == 0 {
		g.body("", 1+g.intn(2))
	}
	g.pf("wait\n")
	if g.intn(2) == 0 {
		// Post-join accesses: race-free against the workers by the join
		// rule, whatever locks they use.
		g.body("", 1)
	}
	g.pf("print %s\n", g.shared[0])
}

// barrierProgram: nThreads parties proceed through fixed barrier rounds;
// each phase a thread mostly touches the variable it "owns" that round
// (race-free, barrier-separated), sometimes one it does not (a race the
// static barrier rule must still catch as unordered).
func (g *pgen) barrierProgram(nThreads int) {
	rounds := 2 + g.intn(2)
	g.pf("barrier bar %d\n", nThreads)
	phase := func(indent string, ti, round int) {
		v := g.shared[(ti+round)%len(g.shared)]
		if g.intn(5) == 0 {
			v = g.shared[g.intn(len(g.shared))] // break ownership: likely racy
		}
		n := 1 + g.intn(2)
		for i := 0; i < n; i++ {
			if g.intn(2) == 0 {
				g.pf("%s%s = %s + %d\n", indent, v, v, 1+g.intn(5))
			} else {
				g.pf("%sprint %s\n", indent, v)
			}
		}
		g.pf("%sawait bar\n", indent)
	}
	for ti := 1; ti < nThreads; ti++ {
		g.pf("spawn {\n")
		for r := 0; r < rounds; r++ {
			phase("    ", ti, r)
		}
		g.pf("}\n")
	}
	for r := 0; r < rounds; r++ {
		phase("", 0, r)
	}
	g.pf("wait\n")
	g.pf("print %s\n", g.shared[0])
}

// loopSpawnProgram: workers spawned inside a bounded loop — the
// multi-thread shape, whose instances may race with themselves.
func (g *pgen) loopSpawnProgram() {
	k := 2 + g.intn(2)
	g.pf("local i\ni = 0\nwhile i < %d {\n", k)
	g.pf("    spawn {\n")
	g.body("        ", 1+g.intn(2))
	g.pf("    }\n")
	g.pf("    i = i + 1\n}\n")
	if g.intn(2) == 0 {
		g.body("", 1)
	}
	g.pf("wait\n")
	g.pf("print %s\n", g.shared[0])
}

// body emits n segments of work at the given indentation.
func (g *pgen) body(indent string, n int) {
	for i := 0; i < n; i++ {
		switch g.intn(4) {
		case 0: // locked block
			v := g.intn(len(g.shared))
			m := g.lockFor(v)
			g.pf("%sacquire %s\n", indent, m)
			g.accesses(indent, v, 1+g.intn(2))
			g.pf("%srelease %s\n", indent, m)
		case 1: // bounded loop
			c := g.tmp()
			k := 2 + g.intn(3)
			v := g.intn(len(g.shared))
			g.pf("%slocal %s\n%s%s = 0\n", indent, c, indent, c)
			g.pf("%swhile %s < %d {\n", indent, c, k)
			if g.disciplined {
				m := g.lockFor(v)
				g.pf("%s    acquire %s\n", indent, m)
				g.accesses(indent+"    ", v, 1)
				g.pf("%s    release %s\n", indent, m)
			} else {
				g.accesses(indent+"    ", v, 1)
			}
			g.pf("%s    %s = %s + 1\n%s}\n", indent, c, c, indent)
		case 2: // conditional
			v := g.intn(len(g.shared))
			t := g.tmp()
			g.pf("%slocal %s\n", indent, t)
			g.readInto(indent, t, v)
			g.pf("%sif %s < %d {\n", indent, t, 1+g.intn(10))
			g.accesses(indent+"    ", v, 1)
			g.pf("%s}\n", indent)
		default: // straight-line accesses
			g.accesses(indent, g.intn(len(g.shared)), 1+g.intn(2))
		}
	}
}

// lockFor picks the lock guarding shared[v]: the disciplined one when the
// program is disciplined, any otherwise.
func (g *pgen) lockFor(v int) string {
	if g.disciplined {
		return g.locks[v%len(g.locks)]
	}
	return g.locks[g.intn(len(g.locks))]
}

// readInto emits "t = <source>" where the source is the shared variable
// (or occasionally the volatile, which never races).
func (g *pgen) readInto(indent, t string, v int) {
	if len(g.vols) > 0 && g.intn(4) == 0 {
		g.pf("%s%s = %s\n", indent, t, g.vols[0])
		return
	}
	g.pf("%s%s = %s\n", indent, t, g.shared[v])
}

// accesses emits n plain statements touching shared[v] (and occasionally
// the volatile).
func (g *pgen) accesses(indent string, v int, n int) {
	name := g.shared[v]
	for i := 0; i < n; i++ {
		switch g.intn(4) {
		case 0:
			g.pf("%s%s = %d\n", indent, name, g.intn(100))
		case 1:
			g.pf("%sprint %s\n", indent, name)
		case 2:
			if len(g.vols) > 0 {
				g.pf("%s%s = %s + 1\n", indent, g.vols[0], name)
				continue
			}
			g.pf("%s%s = %s + %d\n", indent, name, name, 1+g.intn(9))
		default:
			g.pf("%s%s = %s + %d\n", indent, name, name, 1+g.intn(9))
		}
	}
}

func (g *pgen) tmp() string {
	g.tmpCount++
	return fmt.Sprintf("t%d", g.tmpCount)
}
