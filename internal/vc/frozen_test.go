package vc

import (
	"testing"

	"repro/internal/epoch"
)

func TestFreezeSnapshotsValue(t *testing.T) {
	c := FromClocks(3, 5, 0, 7)
	f := c.Freeze()
	if f.Size() != 4 {
		t.Fatalf("Size = %d, want 4", f.Size())
	}
	for i := 0; i < 4; i++ {
		if got, want := f.Get(epoch.Tid(i)), c.Get(epoch.Tid(i)); got != want {
			t.Fatalf("Get(%d) = %v, want %v", i, got, want)
		}
	}
	// Beyond the representation: minimal.
	if got := f.Get(9); got != epoch.Min(9) {
		t.Fatalf("Get(9) = %v, want %v", got, epoch.Min(9))
	}
	// Mutating the source must not change the snapshot.
	c.Inc(1)
	if got, want := f.Get(1), epoch.Make(1, 5); got != want {
		t.Fatalf("snapshot changed under mutation: Get(1) = %v, want %v", got, want)
	}
}

func TestFreezeCacheReuseAndInvalidation(t *testing.T) {
	c := FromClocks(1, 2)
	f1 := c.Freeze()
	f2 := c.Freeze()
	if f1 != f2 {
		t.Fatal("Freeze of an unchanged clock should return the cached snapshot")
	}
	if m := c.Metrics(); m.Freezes != 1 || m.FreezeReuses != 1 {
		t.Fatalf("Metrics = %+v, want Freezes=1 FreezeReuses=1", m)
	}
	c.Inc(0)
	f3 := c.Freeze()
	if f3 == f1 {
		t.Fatal("Freeze after mutation must produce a fresh snapshot")
	}
	if got, want := f3.Get(0), epoch.Make(0, 2); got != want {
		t.Fatalf("fresh snapshot Get(0) = %v, want %v", got, want)
	}
	// A covered Join mutates nothing and must keep the cache.
	c.Join(FromClocks(1, 1))
	if c.Freeze() != f3 {
		t.Fatal("covered Join invalidated the snapshot cache")
	}
	// An advancing Join must invalidate it.
	c.Join(FromClocks(0, 9))
	if c.Freeze() == f3 {
		t.Fatal("advancing Join kept a stale snapshot")
	}
}

func TestFreezeTrimsTrailingMinimal(t *testing.T) {
	c := New()
	c.Set(0, epoch.Make(0, 4))
	c.Set(5, epoch.Make(5, 1))
	c.Set(5, epoch.Min(5)) // back to minimal: entry 5 is now trailing noise
	f := c.Freeze()
	if f.Size() != 1 {
		t.Fatalf("Size = %d, want 1 (trailing minimal entries trimmed)", f.Size())
	}
	if !f.Equal(FromClocks(4).Freeze()) {
		t.Fatalf("trimmed snapshot %v != %v", f, FromClocks(4).Freeze())
	}
}

func TestFrozenNilIsMinimal(t *testing.T) {
	var f *Frozen
	if f.Size() != 0 {
		t.Fatal("nil Frozen should be empty")
	}
	if got := f.Get(3); got != epoch.Min(3) {
		t.Fatalf("nil Get(3) = %v, want %v", got, epoch.Min(3))
	}
	if !f.EpochLeq(epoch.Min(7)) {
		t.Fatal("minimal epoch must be ⪯ the minimal clock")
	}
	if f.EpochLeq(epoch.Make(2, 1)) {
		t.Fatal("2@1 must not be ⪯ the minimal clock")
	}
	c := FromClocks(3, 4)
	c.JoinFrozen(f)
	if !c.Equal(FromClocks(3, 4)) {
		t.Fatal("JoinFrozen(nil) must be the identity")
	}
}

func TestJoinFrozenMatchesJoin(t *testing.T) {
	a := FromClocks(3, 0, 7)
	b := FromClocks(1, 5, 2, 9)
	viaVC := a.Clone()
	viaVC.Join(b)
	viaFrozen := a.Clone()
	viaFrozen.JoinFrozen(b.Freeze())
	if !viaVC.Equal(viaFrozen) {
		t.Fatalf("JoinFrozen %v != Join %v", viaFrozen, viaVC)
	}
}

func TestJoinFastPaths(t *testing.T) {
	// Empty other: no scan recorded, no growth.
	c := FromClocks(2, 3)
	c.Join(New())
	if !c.Equal(FromClocks(2, 3)) {
		t.Fatal("Join with empty clock changed the receiver")
	}
	if m := c.Metrics(); m.Joins != 1 || m.JoinScanned != 0 {
		t.Fatalf("Metrics = %+v, want Joins=1 JoinScanned=0", m)
	}
	// Covered other (other ⊑ c, shorter): no writes, no growth.
	before := c.Metrics().Grows
	c.Join(FromClocks(1))
	if !c.Equal(FromClocks(2, 3)) {
		t.Fatal("covered Join changed the receiver")
	}
	if c.Metrics().Grows != before {
		t.Fatal("covered Join grew the representation")
	}
	// General join still merges pointwise.
	c.Join(FromClocks(0, 9, 4))
	if !c.Equal(FromClocks(2, 9, 4)) {
		t.Fatalf("Join = %v, want <0@2,1@9,2@4>", c)
	}
}

func TestInterner(t *testing.T) {
	in := NewInterner()
	a := FromClocks(1, 2, 3).Freeze()
	b := FromClocks(1, 2, 3).Freeze()
	d := FromClocks(1, 2, 4).Freeze()
	if in.Intern(a) != a {
		t.Fatal("first Intern must canonicalize to the argument")
	}
	if in.Intern(b) != a {
		t.Fatal("Intern of an equal clock must return the canonical snapshot")
	}
	if in.Intern(d) != d {
		t.Fatal("Intern of a distinct clock must register it")
	}
	// Representation-insensitive: trailing minimal entries are trimmed by
	// Freeze, so a padded build of the same clock interns to the canonical.
	padded := New()
	padded.Set(0, epoch.Make(0, 1))
	padded.Set(1, epoch.Make(1, 2))
	padded.Set(2, epoch.Make(2, 3))
	padded.Set(7, epoch.Make(7, 1))
	padded.Set(7, epoch.Min(7))
	if in.Intern(padded.Freeze()) != a {
		t.Fatal("padded representation of an equal clock missed the intern")
	}
	hits, misses := in.Stats()
	if hits != 2 || misses != 2 || in.Len() != 2 {
		t.Fatalf("Stats = (%d,%d) Len=%d, want (2,2) Len=2", hits, misses, in.Len())
	}
}

// joinBenchClocks builds a receiver and an argument of n entries each; when
// covered is true the argument is entirely ⊑ the receiver (the fast-path
// shape of barrier re-arrivals and same-thread re-acquires).
func joinBenchClocks(n int, covered bool) (*VC, *VC) {
	recv, arg := New(), New()
	for i := 0; i < n; i++ {
		t := epoch.Tid(i)
		recv.Set(t, epoch.Make(t, uint64(10+i)))
		if covered {
			arg.Set(t, epoch.Make(t, uint64(1+i)))
		} else {
			arg.Set(t, epoch.Make(t, uint64(20+i)))
		}
	}
	return recv, arg
}

// BenchmarkJoinAdvancing is the general case: every entry of the argument
// advances the receiver. The fast-path check adds one compare per entry;
// this benchmark is the no-regression guard for satellite "vc.Join fast
// path".
func BenchmarkJoinAdvancing(b *testing.B) {
	recv, arg := joinBenchClocks(32, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := recv.Clone()
		c.Join(arg)
	}
}

// BenchmarkJoinCovered is the fast-path case: the argument is already ⊑
// the receiver, so the loop performs no writes.
func BenchmarkJoinCovered(b *testing.B) {
	recv, arg := joinBenchClocks(32, true)
	c := recv.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Join(arg)
	}
}

// BenchmarkJoinEmpty is the O(1) fast path: joining a never-released
// lock's minimal clock.
func BenchmarkJoinEmpty(b *testing.B) {
	recv, _ := joinBenchClocks(32, true)
	empty := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recv.Join(empty)
	}
}

// BenchmarkFreezeCached measures the copy-on-write hit: freezing an
// unchanged clock.
func BenchmarkFreezeCached(b *testing.B) {
	c, _ := joinBenchClocks(32, true)
	c.Freeze()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Freeze()
	}
}

// BenchmarkFreezeMiss measures the copy cost when every freeze follows a
// mutation (the worst case the cache cannot help).
func BenchmarkFreezeMiss(b *testing.B) {
	c, _ := joinBenchClocks(32, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc(0)
		c.Freeze()
	}
}
