package vc

import (
	"math/rand"
	"testing"

	"repro/internal/epoch"
)

// equalClocks compares two Clock values pointwise over a window wide
// enough to cover both representations plus implicit minimal entries.
func equalClocks(t *testing.T, a, b Clock, ctx string) {
	t.Helper()
	n := a.Size()
	if b.Size() > n {
		n = b.Size()
	}
	n += 4
	for i := 0; i < n; i++ {
		tid := epoch.Tid(i)
		if ae, be := a.Get(tid), b.Get(tid); ae != be {
			t.Fatalf("%s: clocks diverge at t%d: %v vs %v\n dense=%v\n tree=%v",
				ctx, i, ae, be, a, b)
		}
	}
}

// clockOp is one random mutation applied identically to a dense and a
// tree clock in the conformance driver below.
type clockOp struct {
	kind int // 0 Set, 1 Inc, 2 Join peer, 3 JoinFrozen, 4 Assign peer, 5 Freeze
	t    epoch.Tid
	c    uint64
	peer int
}

// TestQuickDenseTreeConformance drives random operation sequences through
// paired dense/tree clock families and checks pointwise equality after
// every step — the property that lets the detectors swap representations
// without changing a single report.
func TestQuickDenseTreeConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 50; trial++ {
		pool := NewPool()
		const nClocks = 4
		dense := make([]Clock, nClocks)
		tree := make([]Clock, nClocks)
		for i := range dense {
			dense[i] = NewClock(ImplDense, pool)
			tree[i] = NewClock(ImplTree, pool)
		}
		var frozenDense []*Frozen
		var frozenTree []*Frozen
		for step := 0; step < 200; step++ {
			self := rng.Intn(nClocks)
			op := clockOp{
				kind: rng.Intn(6),
				t:    epoch.Tid(rng.Intn(12)),
				c:    uint64(rng.Intn(8)),
				peer: rng.Intn(nClocks),
			}
			d, tr := dense[self], tree[self]
			switch op.kind {
			case 0:
				// Random Set, including non-monotone ones — the memo
				// invalidation path.
				d.Set(op.t, epoch.Make(op.t, op.c))
				tr.Set(op.t, epoch.Make(op.t, op.c))
			case 1:
				d.Inc(op.t)
				tr.Inc(op.t)
			case 2:
				d.Join(dense[op.peer])
				tr.Join(tree[op.peer])
			case 3:
				if len(frozenDense) > 0 {
					i := rng.Intn(len(frozenDense))
					d.JoinFrozen(frozenDense[i])
					tr.JoinFrozen(frozenTree[i])
				}
			case 4:
				d.Assign(dense[op.peer])
				tr.Assign(tree[op.peer])
			case 5:
				fd, ft := d.Freeze(), tr.Freeze()
				if !fd.Equal(ft) {
					t.Fatalf("trial %d step %d: snapshots diverge: %v vs %v", trial, step, fd, ft)
				}
				frozenDense = append(frozenDense, fd)
				frozenTree = append(frozenTree, ft)
			}
			equalClocks(t, d, tr, "after op")
			// EpochLeq must agree too: it is the fast-path primitive.
			probe := epoch.Make(op.t, op.c)
			if d.EpochLeq(probe) != tr.EpochLeq(probe) {
				t.Fatalf("trial %d step %d: EpochLeq(%v) disagrees", trial, step, probe)
			}
		}
	}
}

// TestTreeMemoElidesRepeatJoin pins the whole-clock memo: joining an
// unchanged source twice answers the second join without scanning.
func TestTreeMemoElidesRepeatJoin(t *testing.T) {
	src := NewTree(nil)
	src.Inc(3)
	src.Inc(3)
	dst := NewTree(nil)
	dst.Join(src)
	before := dst.Metrics()
	dst.Join(src)
	after := dst.Metrics()
	if after.JoinsElided != before.JoinsElided+1 {
		t.Fatalf("repeat join not elided: %+v -> %+v", before, after)
	}
	if after.JoinScanned != before.JoinScanned {
		t.Fatalf("elided join scanned entries: %+v -> %+v", before, after)
	}
}

// TestTreeMemoInvalidatesOnSourceMutation pins the source side: any
// mutation of the source advances its version, so the memo stops eliding.
func TestTreeMemoInvalidatesOnSourceMutation(t *testing.T) {
	src := NewTree(nil)
	src.Inc(3)
	dst := NewTree(nil)
	dst.Join(src)
	src.Inc(3)
	dst.Join(src)
	if got := dst.Get(3); got != src.Get(3) {
		t.Fatalf("join after source mutation missed the update: dst=%v src=%v", got, src.Get(3))
	}
}

// TestTreeMemoInvalidatesOnDestinationLowering pins the destination side:
// a non-monotone Set breaks the coverage promise and must drop the memo.
func TestTreeMemoInvalidatesOnDestinationLowering(t *testing.T) {
	src := NewTree(nil)
	src.Set(2, epoch.Make(2, 9))
	dst := NewTree(nil)
	dst.Join(src)
	// Lower the entry the memo claims is covered.
	dst.Set(2, epoch.Make(2, 1))
	src.Inc(5) // mutate src so the solo window, not the stale memo, could hide the bug
	dst.Join(src)
	if got := dst.Get(2); got != epoch.Make(2, 9) {
		t.Fatalf("memo survived non-monotone Set: dst[2]=%v, want 2@9", got)
	}
}

// TestTreeLastWriterShortcut pins the solo-index window: after a memoized
// join, a source that only Inc'd one thread is re-joined by comparing a
// single entry.
func TestTreeLastWriterShortcut(t *testing.T) {
	src := NewTree(nil)
	for i := 0; i < 40; i++ {
		src.Inc(epoch.Tid(i % 20)) // touch many chunks
	}
	dst := NewTree(nil)
	dst.Join(src)
	base := dst.Metrics().JoinScanned
	src.Inc(7)
	src.Inc(7)
	dst.Join(src)
	scanned := dst.Metrics().JoinScanned - base
	if scanned != 1 {
		t.Fatalf("last-writer join scanned %d entries, want 1", scanned)
	}
	if dst.Get(7) != src.Get(7) {
		t.Fatalf("shortcut join missed the update")
	}
}

// TestTreeAssignInvalidatesPeerMemos pins Assign's version stamping: a
// destination holding a memo about the assigned-over source must rescan.
func TestTreeAssignInvalidatesPeerMemos(t *testing.T) {
	src := NewTree(nil)
	src.Inc(1)
	dst := NewTree(nil)
	dst.Join(src)

	big := NewTree(nil)
	big.Set(4, epoch.Make(4, 7))
	src.Assign(big)
	dst.Join(src)
	if got := dst.Get(4); got != epoch.Make(4, 7) {
		t.Fatalf("memo survived source Assign: dst[4]=%v, want 4@7", got)
	}
}

// TestGeometricGrowth pins the new ensureCapacity contract: Grows counts
// only reallocation-and-copy events, so a clock touched at increasing tids
// reallocates O(log n) times.
func TestGeometricGrowth(t *testing.T) {
	c := New()
	for i := 0; i < 1000; i++ {
		c.Inc(epoch.Tid(i))
	}
	if g := c.Metrics().Grows; g > 10 {
		t.Fatalf("1000 single-step grows cost %d reallocations, want <= 10 (geometric)", g)
	}
	// Well-formedness survived every in-place extension (stale pool
	// contents must have been overwritten with minimal epochs).
	for i := 0; i < 1000; i++ {
		if got := c.Get(epoch.Tid(i)); got != epoch.Make(epoch.Tid(i), 1) {
			t.Fatalf("entry %d corrupted after growth: %v", i, got)
		}
	}
}

// TestAssignSingleGrow is the regression test for the Assign rewrite: one
// Assign from a much larger clock performs exactly one reallocation (one
// Grows tick), not one per entry, and clears the frozen cache once.
func TestAssignSingleGrow(t *testing.T) {
	big := New()
	for i := 0; i < 100; i++ {
		big.Inc(epoch.Tid(i))
	}
	c := New()
	f := c.Freeze()
	before := c.Metrics().Grows
	c.Assign(big)
	if got := c.Metrics().Grows - before; got != 1 {
		t.Fatalf("Assign from 100-entry clock cost %d grows, want exactly 1", got)
	}
	if !c.Equal(big) {
		t.Fatalf("Assign result differs from source")
	}
	// The pre-Assign snapshot must not be reused: the clock changed.
	if g := c.Freeze(); g == f {
		t.Fatalf("Freeze after Assign returned the stale snapshot")
	}
	// Assigning a smaller value resets the tail to minimal.
	small := New()
	small.Inc(0)
	c.Assign(small)
	for i := 1; i < 100; i++ {
		if got := c.Get(epoch.Tid(i)); got != epoch.Min(epoch.Tid(i)) {
			t.Fatalf("Assign left stale tail entry at %d: %v", i, got)
		}
	}
}

// TestCloneFreezesFresh is the regression test for Clone's frozen-cache
// contract: a clone must not share the original's cached snapshot (a
// *Frozen may be reachable from at most one clock, or pool recycling via
// AdoptFrozen corrupts the other), so its first Freeze is a fresh copy.
func TestCloneFreezesFresh(t *testing.T) {
	c := New()
	c.Inc(2)
	orig := c.Freeze()
	cl := c.Clone()
	if m := cl.Metrics(); m != (Metrics{}) {
		t.Fatalf("clone inherited metrics: %+v", m)
	}
	got := cl.Freeze()
	if got == orig {
		t.Fatalf("clone's first Freeze reused the original's cached snapshot")
	}
	if !got.Equal(orig) {
		t.Fatalf("clone snapshot differs in value: %v vs %v", got, orig)
	}
	if m := cl.Metrics(); m.Freezes != 1 || m.FreezeReuses != 0 {
		t.Fatalf("clone's first Freeze was not a fresh copy: %+v", m)
	}
}

// TestPoolRecycles pins the pool's core loop: a retired growth array is
// handed back out, and the counters see it.
func TestPoolRecycles(t *testing.T) {
	p := NewPool()
	v := p.get(8)
	if got := p.Stats(); got.Gets != 1 || got.Fresh != 1 {
		t.Fatalf("first get: %+v", got)
	}
	p.put(v[:cap(v)])
	w := p.get(8)
	st := p.Stats()
	if st.Puts != 1 || st.Gets != 2 {
		t.Fatalf("after put+get: %+v", st)
	}
	if st.Fresh != 1 {
		t.Fatalf("second get should recycle, not allocate: %+v", st)
	}
	_ = w
	// Odd capacities never enter a class.
	p.put(make([]epoch.Epoch, 9, 9))
	if got := p.Stats().Puts; got != 1 {
		t.Fatalf("non-power-of-two array was pooled: puts=%d", got)
	}
}

// TestPooledGrowthFillsMinimal pins the stale-contents contract: arrays
// recycled through the pool carry old epochs, and every growth path must
// overwrite the slots it exposes.
func TestPooledGrowthFillsMinimal(t *testing.T) {
	pool := NewPool()
	for _, impl := range []Impl{ImplDense, ImplTree} {
		// Dirty the pool with a clock full of large epochs, then retire it.
		dirty := NewClock(impl, pool)
		for i := 0; i < 30; i++ {
			dirty.Set(epoch.Tid(i), epoch.Make(epoch.Tid(i), 1000))
		}
		dirty.Assign(NewClock(impl, pool)) // shrink: retires nothing, but Freeze below does
		// Grow a fresh clock through the same classes.
		c := NewClock(impl, pool)
		c.Inc(29)
		for i := 0; i < 29; i++ {
			if got := c.Get(epoch.Tid(i)); got != epoch.Min(epoch.Tid(i)) {
				t.Fatalf("%v: stale epoch leaked through pool at t%d: %v", impl, i, got)
			}
		}
	}
}

// TestParseImpl pins the knob spellings.
func TestParseImpl(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Impl
		err  bool
	}{
		{"", ImplDense, false},
		{"dense", ImplDense, false},
		{"tree", ImplTree, false},
		{"lazy", 0, true},
	} {
		got, err := ParseImpl(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Fatalf("ParseImpl(%q) = %v, %v", tc.in, got, err)
		}
	}
	if ImplDense.String() != "dense" || ImplTree.String() != "tree" {
		t.Fatalf("Impl.String spellings changed")
	}
}

// TestTreeFrozenMemoRing pins the JoinFrozen pointer ring: re-joining one
// of the last two snapshots is elided (the lock re-acquire shape of the
// parcheck prepass).
func TestTreeFrozenMemoRing(t *testing.T) {
	f1 := FromClocks(0, 5).Freeze()
	f2 := FromClocks(0, 0, 7).Freeze()
	c := NewTree(nil)
	c.JoinFrozen(f1)
	c.JoinFrozen(f2)
	base := c.Metrics().JoinsElided
	c.JoinFrozen(f1)
	c.JoinFrozen(f2)
	if got := c.Metrics().JoinsElided - base; got != 2 {
		t.Fatalf("frozen memo ring elided %d of 2 repeat joins", got)
	}
}
