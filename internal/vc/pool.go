package vc

import (
	"sync"
	"sync/atomic"

	"repro/internal/epoch"
)

// Pool recycles the backing arrays of clocks and Frozen snapshots through
// power-of-two size classes. Growing a clock at high thread counts
// otherwise allocates a fresh array per grow and per snapshot, and the
// old arrays become garbage immediately — the dominant GC pressure of
// clock-heavy runs (lock release copies, the parcheck prepass's
// per-sync-op snapshots).
//
// Arrays returned by get carry stale contents: every consumer fills the
// slots it exposes (epoch.FillMin on growth, copy on snapshot), which the
// vc tests pin.
//
// A Pool is safe for concurrent use — the concurrent detectors share one
// pool across their thread and lock clocks — and a nil *Pool is valid
// everywhere, meaning plain make/GC (the seed behavior).
type Pool struct {
	// classes[k] holds arrays of capacity exactly 1<<k. Class indexes
	// below minClassBits are unused: tiny arrays are cheaper to allocate
	// than to recycle.
	classes [maxClassBits + 1]sync.Pool

	gets, puts, fresh atomic.Uint64
}

const (
	// minClassBits is the smallest pooled capacity (8 entries = 64 bytes,
	// a cache line).
	minClassBits = 3
	// maxClassBits bounds pooled capacity at 1<<16 entries — the whole
	// tid space, so every well-formed clock is poolable.
	maxClassBits = 16
)

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{}
}

// PoolStats is a point-in-time reading of a pool's traffic.
type PoolStats struct {
	// Gets counts arrays handed out; Fresh counts the subset that had to
	// be freshly allocated (a miss), so Gets-Fresh arrays were recycled.
	Gets, Fresh uint64
	// Puts counts arrays returned for reuse.
	Puts uint64
}

// Stats reads the pool's counters; safe concurrently with use.
func (p *Pool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return PoolStats{Gets: p.gets.Load(), Fresh: p.fresh.Load(), Puts: p.puts.Load()}
}

// classFor returns the class index whose capacity (1<<k) fits n, or -1
// when n is outside the pooled range.
func classFor(n int) int {
	if n > 1<<maxClassBits {
		return -1
	}
	k := minClassBits
	for 1<<k < n {
		k++
	}
	return k
}

// get returns an array of length n whose capacity is the power of two of
// n's size class. The contents are unspecified — stale epochs from a
// previous life — and the caller must fill every slot it exposes.
func (p *Pool) get(n int) []epoch.Epoch {
	k := classFor(n)
	if k < 0 {
		return make([]epoch.Epoch, n)
	}
	p.gets.Add(1)
	if v, ok := p.classes[k].Get().(*[]epoch.Epoch); ok {
		return (*v)[:n]
	}
	p.fresh.Add(1)
	return make([]epoch.Epoch, n, 1<<k)
}

// put returns an array's backing storage for reuse. The caller must be
// the sole referent: recycling a slice another clock or snapshot can
// still read corrupts that reader when the array is reissued.
func (p *Pool) put(v []epoch.Epoch) {
	if cap(v) < 1<<minClassBits {
		return
	}
	// Only full-capacity power-of-two arrays re-enter a class: anything
	// else (a plain make from the seed path, an over-range array) is left
	// to the GC rather than poisoning a class with short capacity.
	k := classFor(cap(v))
	if k < 0 || cap(v) != 1<<k {
		return
	}
	v = v[:0]
	p.classes[k].Put(&v)
	p.puts.Add(1)
}

// getSlice is the nil-tolerant allocation helper the clock
// implementations use: pool storage when pooled, plain make otherwise.
func (p *Pool) getSlice(n int) []epoch.Epoch {
	if p == nil {
		return make([]epoch.Epoch, n)
	}
	return p.get(n)
}

// putSlice is the nil-tolerant recycle helper.
func (p *Pool) putSlice(v []epoch.Epoch) {
	if p == nil || v == nil {
		return
	}
	p.put(v)
}

// PutFrozen recycles a snapshot's backing array. The contract is strict:
// f must be unreachable by anyone else — in practice the one safe caller
// is the interner canonicalization path, which recycles a freshly frozen
// duplicate after swapping the canonical snapshot into the source clock
// (AdoptFrozen), so the duplicate never escaped.
func (p *Pool) PutFrozen(f *Frozen) {
	if p == nil || f == nil {
		return
	}
	p.put(f.v)
	f.v = nil
}
