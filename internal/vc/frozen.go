package vc

import (
	"strings"

	"repro/internal/epoch"
)

// Frozen is an immutable snapshot of a vector clock. A nil *Frozen is the
// minimal clock ⊥V (every entry reads as t@0), so zero-initialized lock
// state needs no allocation before its first release.
//
// Frozen values are produced by VC.Freeze, which caches the snapshot on
// the source clock: freezing an unchanged clock twice returns the same
// pointer instead of copying again. A clock that is released k times but
// mutated j times between releases therefore allocates min(j+1, k)
// snapshots, which is what makes publishing per-access timestamps O(sync
// ops) in allocations rather than O(accesses) (the parcheck prepass) and
// a lock release cheaper than a full Assign copy when nothing changed
// since the previous release.
//
// Because a Frozen is immutable it is safe to share across goroutines
// without synchronization once safely published.
type Frozen struct {
	v []epoch.Epoch
}

// Size returns the length of the snapshot's representation; entries at
// index >= Size() are implicitly minimal. Trailing minimal entries are
// trimmed by Freeze, so Size is canonical for equal clocks.
func (f *Frozen) Size() int {
	if f == nil {
		return 0
	}
	return len(f.v)
}

// Get returns the epoch recorded for thread t (t@0 beyond the snapshot).
func (f *Frozen) Get(t epoch.Tid) epoch.Epoch {
	if f != nil && int(t) < len(f.v) {
		return f.v[t]
	}
	return epoch.Min(t)
}

// EpochLeq reports e ⪯ f, i.e. whether epoch e happens before the frozen
// clock: e <= f.Get(e.Tid()). It must not be called with the Shared
// marker, like VC.EpochLeq.
func (f *Frozen) EpochLeq(e epoch.Epoch) bool {
	return e.Leq(f.Get(e.Tid()))
}

// Equal reports whether two snapshots denote the same clock.
func (f *Frozen) Equal(other *Frozen) bool {
	// Freeze trims trailing minimal entries, so equal clocks have equal
	// representations.
	if f.Size() != other.Size() {
		return false
	}
	for i := 0; i < f.Size(); i++ {
		if f.v[i] != other.v[i] {
			return false
		}
	}
	return true
}

// ToVC returns an independent mutable copy of the snapshot.
func (f *Frozen) ToVC() *VC {
	if f == nil {
		return New()
	}
	out := &VC{v: make([]epoch.Epoch, len(f.v))}
	copy(out.v, f.v)
	return out
}

// String renders the snapshot in the paper's clock-list notation.
func (f *Frozen) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i := 0; i < f.Size(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(f.v[i].String())
	}
	b.WriteByte('>')
	return b.String()
}

// Freeze returns an immutable snapshot of the clock's current value. The
// snapshot is cached on the clock and invalidated by the next mutation,
// so repeated freezes of an unchanged clock are allocation-free pointer
// returns (counted in Metrics.FreezeReuses). Trailing minimal entries are
// trimmed so that equal clocks freeze to structurally equal snapshots.
func (c *VC) Freeze() *Frozen {
	if c.frozen != nil {
		c.m.FreezeReuses++
		return c.frozen
	}
	c.frozen = freezeSlice(c.v, c.pool)
	c.m.Freezes++
	return c.frozen
}

// freezeSlice copies v — trailing minimal entries trimmed — into a fresh
// snapshot whose storage comes from pool (plain make when nil).
func freezeSlice(v []epoch.Epoch, pool *Pool) *Frozen {
	n := len(v)
	for n > 0 && v[n-1] == epoch.Min(epoch.Tid(n-1)) {
		n--
	}
	out := pool.getSlice(n)
	copy(out, v[:n])
	return &Frozen{v: out}
}

// AdoptFrozen replaces the cached Freeze snapshot with f, which must
// denote the clock's current value. It exists for interning callers: after
// Intern maps a freshly frozen duplicate to its canonical snapshot,
// adopting the canonical lets the next Freeze reuse it — and leaves the
// duplicate unreachable, so its storage can go back to the pool
// (Pool.PutFrozen).
func (c *VC) AdoptFrozen(f *Frozen) { c.frozen = f }

// JoinFrozen merges a frozen snapshot into c pointwise: c := c ⊔ f. It has
// the same fast paths as Join: a nil or empty snapshot returns without
// scanning, and entries already covered by c are skipped without writing,
// so joining a snapshot that is entirely ⊑ c performs no mutation (and
// leaves c's own frozen cache intact).
func (c *VC) JoinFrozen(f *Frozen) {
	c.m.Joins++
	if f == nil || len(f.v) == 0 {
		return
	}
	c.m.JoinScanned += uint64(len(f.v))
	for i, fe := range f.v {
		t := epoch.Tid(i)
		// Same-tid epochs order by their clock bits, so the raw comparison
		// is the pointwise order.
		if fe > c.Get(t) {
			c.Set(t, fe)
		}
	}
}

// Interner deduplicates frozen snapshots by value: Intern returns one
// canonical *Frozen per distinct clock. The parcheck prepass interns the
// timestamps it publishes so that threads whose clocks coincide (barrier
// rounds, fork fan-outs) share one snapshot, and so the intern hit-rate
// is observable. An Interner is NOT safe for concurrent use; the single
// prepass goroutine owns it.
type Interner struct {
	buckets      map[uint64][]*Frozen
	hits, misses uint64
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{buckets: map[uint64][]*Frozen{}}
}

// Intern returns the canonical snapshot equal to f, registering f as
// canonical if its clock value has not been seen before.
func (in *Interner) Intern(f *Frozen) *Frozen {
	h := frozenHash(f)
	for _, g := range in.buckets[h] {
		if g.Equal(f) {
			in.hits++
			return g
		}
	}
	in.buckets[h] = append(in.buckets[h], f)
	in.misses++
	return f
}

// Stats returns how many Intern calls found an existing snapshot (hits)
// and how many registered a new one (misses). Len is the number of
// distinct clocks interned, which equals misses.
func (in *Interner) Stats() (hits, misses uint64) { return in.hits, in.misses }

// Len returns the number of distinct clocks interned.
func (in *Interner) Len() int { return int(in.misses) }

// frozenHash is FNV-1a over the snapshot's epochs.
func frozenHash(f *Frozen) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < f.Size(); i++ {
		e := uint64(f.v[i])
		for s := 0; s < 64; s += 8 {
			h ^= (e >> s) & 0xff
			h *= prime64
		}
	}
	return h
}
