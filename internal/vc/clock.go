package vc

import (
	"fmt"

	"repro/internal/epoch"
)

// Clock is the mutable vector-clock abstraction the detectors and the
// parallel checker program against. Two implementations exist:
//
//   - *VC, the paper's dense grow-on-demand slice (Fig. 3), and
//   - *Tree, a tree-clock-style lazy representation whose joins skip
//     subtrees the destination already covers (see tree.go).
//
// The interface is exactly the operation set the Fig. 3/Fig. 4 handlers
// and the parcheck prepass need. It deliberately excludes Leq/Equal/Clone:
// those compare or duplicate whole clocks and are only used by the
// specification interpreter, the HB oracle and tests, which stay on the
// concrete dense type. Implementations are NOT safe for concurrent use;
// callers layer their own synchronization, as with *VC.
type Clock interface {
	// Get returns the epoch recorded for thread t (t@0 beyond the
	// representation).
	Get(t epoch.Tid) epoch.Epoch
	// Set records epoch e for thread t; e.Tid() must equal t.
	Set(t epoch.Tid, e epoch.Epoch)
	// Inc increments the t-component: V := inc_t(V).
	Inc(t epoch.Tid)
	// Size is the length of the underlying representation.
	Size() int
	// EpochLeq reports e ⪯ V (never call with the Shared marker).
	EpochLeq(e epoch.Epoch) bool
	// Join merges other into the receiver pointwise: V := V ⊔ other.
	Join(other Clock)
	// JoinFrozen merges an immutable snapshot: V := V ⊔ f (nil f is ⊥V).
	JoinFrozen(f *Frozen)
	// Assign overwrites the receiver with other's value: V := other.
	Assign(other Clock)
	// Freeze returns an immutable snapshot, cached until the next
	// mutation.
	Freeze() *Frozen
	// AdoptFrozen replaces the cached Freeze snapshot with f, which the
	// caller guarantees denotes the clock's current value (the interner
	// canonicalization hook — see Pool).
	AdoptFrozen(f *Frozen)
	// Snapshot returns a fresh copy of the raw epochs up to Size.
	Snapshot() []epoch.Epoch
	// Metrics returns the clock's structural cost counters.
	Metrics() Metrics
	// String renders the clock in the paper's ⟨c0,c1,...⟩ notation.
	String() string
}

// Impl selects a Clock implementation. The zero value is the dense
// representation, so zero-valued configs keep the seed behavior.
type Impl int

const (
	// ImplDense is the paper's dense slice representation (*VC).
	ImplDense Impl = iota
	// ImplTree is the lazy tree-clock representation (*Tree).
	ImplTree
)

// String returns the knob spelling of the implementation name.
func (i Impl) String() string {
	switch i {
	case ImplDense:
		return "dense"
	case ImplTree:
		return "tree"
	default:
		return fmt.Sprintf("Impl(%d)", int(i))
	}
}

// ParseImpl maps a knob string to an Impl; "" means dense.
func ParseImpl(s string) (Impl, error) {
	switch s {
	case "", "dense":
		return ImplDense, nil
	case "tree":
		return ImplTree, nil
	default:
		return 0, fmt.Errorf("vc: unknown clock implementation %q (want dense or tree)", s)
	}
}

// Impls lists the selectable implementations in knob spelling.
func Impls() []string { return []string{"dense", "tree"} }

// NewClock constructs an empty (minimal) clock of the selected
// implementation, drawing backing storage from pool when non-nil.
func NewClock(impl Impl, pool *Pool) Clock {
	switch impl {
	case ImplTree:
		return NewTree(pool)
	default:
		return NewPooled(pool)
	}
}

// Compile-time checks: both representations satisfy the interface.
var (
	_ Clock = (*VC)(nil)
	_ Clock = (*Tree)(nil)
)
