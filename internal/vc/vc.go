// Package vc implements the grow-on-demand vector clocks of the VerifiedFT
// analysis (§3 and Fig. 3 of the paper).
//
// A vector clock maps every thread id to an epoch for that thread. The
// Clock interface (clock.go) abstracts the representation; this file is the
// dense implementation: a slice indexed by thread id, entries beyond the
// slice's length reading as the minimal epoch t@0, exactly as the
// VectorClock.get method in Fig. 3 does. This keeps clocks proportional to
// the highest thread id that has actually synchronized through them rather
// than to the total number of threads. tree.go adds a lazy tree-clock
// representation behind the same interface, and pool.go recycles backing
// arrays for both.
//
// The well-formedness invariant of §3 — for all t, Tid(V.Get(t)) == t — is
// maintained by every method and checked by the test suite.
//
// VC values are NOT safe for concurrent use; the concurrent detectors in
// internal/core layer their own synchronization disciplines (locks, atomic
// publication) on top, mirroring §4 and §5 of the paper.
package vc

import (
	"strings"

	"repro/internal/epoch"
)

// VC is a dense vector clock. The zero value is the minimal clock ⊥V
// (every entry reads as t@0) and is ready to use (with no pool).
type VC struct {
	v []epoch.Epoch
	m Metrics

	// frozen caches the last Freeze snapshot; any mutation clears it. See
	// Freeze in frozen.go.
	frozen *Frozen

	// pool, when non-nil, supplies and recycles backing arrays (growth
	// only ever retires arrays this clock exclusively owns, so recycling
	// them is safe; Frozen arrays are shared and never recycled here).
	pool *Pool
}

// Metrics counts a clock's structural costs. Because a clock is not safe
// for concurrent use, the counters are plain fields updated under whatever
// discipline already protects the clock — they add no synchronization and
// no contention. Callers aggregate them across clocks at quiescence.
type Metrics struct {
	// Grows counts reallocation-and-copy extensions of the representation
	// — the allocation events behind the paper's grow-on-demand clocks.
	// In-place extensions within an array's existing capacity (the
	// geometric-growth headroom) are free and not counted.
	Grows uint64
	// Joins counts Join/JoinFrozen operations applied to this clock (as
	// destination).
	Joins uint64
	// JoinScanned counts entries compared across all Joins — the O(threads)
	// work epochs exist to avoid on the access paths.
	JoinScanned uint64
	// JoinsElided counts joins the tree representation answered entirely
	// from its monotone-copy memo — no entry scanned at all. Always zero
	// for the dense representation.
	JoinsElided uint64
	// Freezes counts Freeze calls that had to copy the representation;
	// FreezeReuses counts the calls answered by the cached snapshot. Their
	// ratio is the copy-on-write win of the Frozen layer.
	Freezes      uint64
	FreezeReuses uint64
}

// Add accumulates other into m.
func (m *Metrics) Add(other Metrics) {
	m.Grows += other.Grows
	m.Joins += other.Joins
	m.JoinScanned += other.JoinScanned
	m.JoinsElided += other.JoinsElided
	m.Freezes += other.Freezes
	m.FreezeReuses += other.FreezeReuses
}

// Metrics returns the clock's structural counters. Call under the same
// discipline as any other read of the clock.
func (c *VC) Metrics() Metrics { return c.m }

// New returns an empty (minimal) vector clock.
func New() *VC {
	return &VC{}
}

// NewPooled returns an empty vector clock drawing backing storage from
// pool (nil pool behaves like New).
func NewPooled(pool *Pool) *VC {
	return &VC{pool: pool}
}

// FromClocks builds a vector clock whose entry for thread i carries clock
// values[i]. It is a convenience for tests and examples that use the paper's
// ⟨m,n⟩ notation.
func FromClocks(values ...uint64) *VC {
	c := &VC{v: make([]epoch.Epoch, len(values))}
	for i, val := range values {
		c.v[i] = epoch.Make(epoch.Tid(i), val)
	}
	return c
}

// Size returns the length of the underlying representation. Entries at index
// >= Size() are implicitly minimal.
func (c *VC) Size() int {
	return len(c.v)
}

// Get returns the epoch recorded for thread t, which is t@0 if t lies beyond
// the current representation.
func (c *VC) Get(t epoch.Tid) epoch.Epoch {
	if int(t) < len(c.v) {
		return c.v[t]
	}
	return epoch.Min(t)
}

// Set records epoch e for thread t, growing the representation if needed.
// The epoch's own tid must equal t so the well-formedness invariant is
// preserved.
func (c *VC) Set(t epoch.Tid, e epoch.Epoch) {
	if e.Tid() != t {
		panic("vc: Set would break well-formedness: epoch tid mismatch")
	}
	c.frozen = nil // the cached snapshot no longer reflects the clock
	c.ensureCapacity(int(t) + 1)
	c.v[t] = e
}

// ensureCapacity grows the representation to at least n entries, filling new
// slots with minimal epochs, as Fig. 3's ensureCapacity does via get.
// Capacity grows geometrically (powers of two), so a clock touched by
// threads 0..k reallocates O(log k) times, not O(k); in-place extensions
// within existing capacity cost only the minimal fill. Retired arrays are
// recycled through the pool — the clock is their sole owner, snapshots
// having been copied out by Freeze.
func (c *VC) ensureCapacity(n int) {
	if n <= len(c.v) {
		return
	}
	old := len(c.v)
	if n <= cap(c.v) {
		c.v = c.v[:n]
		epoch.FillMin(c.v, 0, old)
		return
	}
	newCap := 4
	for newCap < n {
		newCap *= 2
	}
	grown := c.pool.getSlice(newCap)[:n]
	copy(grown, c.v)
	epoch.FillMin(grown, 0, old)
	c.pool.putSlice(c.v)
	c.v = grown
	c.m.Grows++
}

// Inc increments the t-component: V := inc_t(V).
func (c *VC) Inc(t epoch.Tid) {
	c.Set(t, c.Get(t).Inc())
}

// Leq reports the pointwise order c ⊑ other. The dense-vs-dense case is
// the historical fast path; a tree argument is compared through the
// interface.
func (c *VC) Leq(other Clock) bool {
	if o, ok := other.(*VC); ok {
		n := len(c.v)
		if len(o.v) > n {
			n = len(o.v)
		}
		for i := 0; i < n; i++ {
			t := epoch.Tid(i)
			if !c.Get(t).Leq(o.Get(t)) {
				return false
			}
		}
		return true
	}
	for i := range c.v {
		t := epoch.Tid(i)
		if !c.v[i].Leq(other.Get(t)) {
			return false
		}
	}
	return true
}

// EpochLeq reports e ⪯ c, i.e. whether epoch e happens before this clock:
// e <= c.Get(e.Tid()). It must not be called with the Shared marker.
func (c *VC) EpochLeq(e epoch.Epoch) bool {
	return e.Leq(c.Get(e.Tid()))
}

// Join merges other into c pointwise: c := c ⊔ other.
//
// Two fast paths keep the common synchronization shapes cheap: an empty
// other (a never-released lock) returns without scanning, and entries of
// other already covered by c are skipped without writing — so a join
// whose argument is entirely ⊑ c (re-acquiring a lock the thread itself
// released last, barrier re-arrivals) mutates nothing, grows nothing, and
// preserves c's cached Freeze snapshot.
func (c *VC) Join(other Clock) {
	c.m.Joins++
	o, ok := other.(*VC)
	if !ok {
		c.joinGeneric(other)
		return
	}
	if len(o.v) == 0 {
		return
	}
	c.m.JoinScanned += uint64(len(o.v))
	for i, oe := range o.v {
		t := epoch.Tid(i)
		// Same-tid epochs order by their clock bits, so the raw comparison
		// is the pointwise order (both sides are well-formed entries for t).
		if oe > c.Get(t) {
			c.Set(t, oe)
		}
	}
}

// joinGeneric merges a non-dense clock through the interface; it exists
// for cross-implementation joins, which the detectors never perform (an
// entire detector runs one implementation) but the property tests do.
func (c *VC) joinGeneric(other Clock) {
	n := other.Size()
	if n == 0 {
		return
	}
	c.m.JoinScanned += uint64(n)
	for i := 0; i < n; i++ {
		t := epoch.Tid(i)
		if oe := other.Get(t); oe > c.Get(t) {
			c.Set(t, oe)
		}
	}
}

// Assign overwrites c with other's contents: c := other (Fig. 3's copy).
// It is a single grow-and-copy: one capacity check, one frozen-cache
// clear, and a bulk copy — where a per-entry Set loop would pay the
// capacity check, the cache clear and the well-formedness branch n times.
// Entries beyond other's representation are reset to minimal, so the
// result denotes exactly other's value regardless of c's previous size.
func (c *VC) Assign(other Clock) {
	c.frozen = nil
	if o, ok := other.(*VC); ok {
		c.assignRaw(o.v)
		return
	}
	if t, ok := other.(*Tree); ok {
		c.assignRaw(t.v)
		return
	}
	n := other.Size()
	c.ensureCapacity(n)
	for i := 0; i < n; i++ {
		c.v[i] = other.Get(epoch.Tid(i))
	}
	epoch.FillMin(c.v, 0, n)
}

// assignRaw bulk-copies a well-formed epoch slice into c.
func (c *VC) assignRaw(src []epoch.Epoch) {
	c.ensureCapacity(len(src))
	copy(c.v, src)
	epoch.FillMin(c.v, 0, len(src))
}

// Clone returns an independent copy of c's clock value. The copy starts
// with zero Metrics (counters describe one clock object's life, not the
// value's history) and — deliberately — no cached Freeze snapshot: a
// *Frozen must be reachable from at most the clock it snapshots, or the
// pool's recycling contract breaks, so the clone's first Freeze performs
// a fresh copy rather than reusing the original's cache. The clone shares
// c's pool.
func (c *VC) Clone() *VC {
	out := &VC{v: make([]epoch.Epoch, len(c.v)), pool: c.pool}
	copy(out.v, c.v)
	return out
}

// Equal reports whether two clocks agree at every index (treating implicit
// minimal entries as equal to explicit ones).
func (c *VC) Equal(other *VC) bool {
	return c.Leq(other) && other.Leq(c)
}

// Snapshot returns the raw epochs up to Size; used by the concurrent
// detectors to publish immutable copies.
func (c *VC) Snapshot() []epoch.Epoch {
	out := make([]epoch.Epoch, len(c.v))
	copy(out, c.v)
	return out
}

// FromSnapshot wraps a raw epoch slice (tid i at index i) as a VC. The slice
// must be well-formed; ownership transfers to the VC.
func FromSnapshot(v []epoch.Epoch) *VC {
	for i, e := range v {
		if e.Tid() != epoch.Tid(i) {
			panic("vc: FromSnapshot: ill-formed entry")
		}
	}
	return &VC{v: v}
}

// String renders the clock in the paper's ⟨c0,c1,...⟩ clock-list notation.
func (c *VC) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, e := range c.v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(e.String())
	}
	b.WriteByte('>')
	return b.String()
}
