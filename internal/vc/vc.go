// Package vc implements the grow-on-demand vector clocks of the VerifiedFT
// analysis (§3 and Fig. 3 of the paper).
//
// A vector clock maps every thread id to an epoch for that thread. The
// implementation stores a dense slice indexed by thread id and treats
// entries beyond the slice's length as the minimal epoch t@0, exactly as the
// VectorClock.get method in Fig. 3 does. This keeps clocks proportional to
// the highest thread id that has actually synchronized through them rather
// than to the total number of threads.
//
// The well-formedness invariant of §3 — for all t, Tid(V.Get(t)) == t — is
// maintained by every method and checked by the test suite.
//
// VC values are NOT safe for concurrent use; the concurrent detectors in
// internal/core layer their own synchronization disciplines (locks, atomic
// publication) on top, mirroring §4 and §5 of the paper.
package vc

import (
	"strings"

	"repro/internal/epoch"
)

// VC is a vector clock. The zero value is the minimal clock ⊥V (every entry
// reads as t@0) and is ready to use.
type VC struct {
	v []epoch.Epoch
	m Metrics

	// frozen caches the last Freeze snapshot; any mutation clears it. See
	// Freeze in frozen.go.
	frozen *Frozen
}

// Metrics counts a clock's structural costs. Because a VC is not safe for
// concurrent use, the counters are plain fields updated under whatever
// discipline already protects the clock — they add no synchronization and
// no contention. Callers aggregate them across clocks at quiescence.
type Metrics struct {
	// Grows counts ensureCapacity extensions of the representation — the
	// allocation-and-copy events behind the paper's grow-on-demand clocks.
	Grows uint64
	// Joins counts Join operations applied to this clock (as destination).
	Joins uint64
	// JoinScanned counts entries compared across all Joins — the O(threads)
	// work epochs exist to avoid on the access paths.
	JoinScanned uint64
	// Freezes counts Freeze calls that had to copy the representation;
	// FreezeReuses counts the calls answered by the cached snapshot. Their
	// ratio is the copy-on-write win of the Frozen layer.
	Freezes      uint64
	FreezeReuses uint64
}

// Add accumulates other into m.
func (m *Metrics) Add(other Metrics) {
	m.Grows += other.Grows
	m.Joins += other.Joins
	m.JoinScanned += other.JoinScanned
	m.Freezes += other.Freezes
	m.FreezeReuses += other.FreezeReuses
}

// Metrics returns the clock's structural counters. Call under the same
// discipline as any other read of the clock.
func (c *VC) Metrics() Metrics { return c.m }

// New returns an empty (minimal) vector clock.
func New() *VC {
	return &VC{}
}

// FromClocks builds a vector clock whose entry for thread i carries clock
// values[i]. It is a convenience for tests and examples that use the paper's
// ⟨m,n⟩ notation.
func FromClocks(values ...uint64) *VC {
	c := &VC{v: make([]epoch.Epoch, len(values))}
	for i, val := range values {
		c.v[i] = epoch.Make(epoch.Tid(i), val)
	}
	return c
}

// Size returns the length of the underlying representation. Entries at index
// >= Size() are implicitly minimal.
func (c *VC) Size() int {
	return len(c.v)
}

// Get returns the epoch recorded for thread t, which is t@0 if t lies beyond
// the current representation.
func (c *VC) Get(t epoch.Tid) epoch.Epoch {
	if int(t) < len(c.v) {
		return c.v[t]
	}
	return epoch.Min(t)
}

// Set records epoch e for thread t, growing the representation if needed.
// The epoch's own tid must equal t so the well-formedness invariant is
// preserved.
func (c *VC) Set(t epoch.Tid, e epoch.Epoch) {
	if e.Tid() != t {
		panic("vc: Set would break well-formedness: epoch tid mismatch")
	}
	c.frozen = nil // the cached snapshot no longer reflects the clock
	c.ensureCapacity(int(t) + 1)
	c.v[t] = e
}

// ensureCapacity grows the representation to at least n entries, filling new
// slots with minimal epochs, as Fig. 3's ensureCapacity does via get.
func (c *VC) ensureCapacity(n int) {
	if n <= len(c.v) {
		return
	}
	grown := make([]epoch.Epoch, n)
	copy(grown, c.v)
	for i := len(c.v); i < n; i++ {
		grown[i] = epoch.Min(epoch.Tid(i))
	}
	c.v = grown
	c.m.Grows++
}

// Inc increments the t-component: V := inc_t(V).
func (c *VC) Inc(t epoch.Tid) {
	c.Set(t, c.Get(t).Inc())
}

// Leq reports the pointwise order c ⊑ other.
func (c *VC) Leq(other *VC) bool {
	n := len(c.v)
	if len(other.v) > n {
		n = len(other.v)
	}
	for i := 0; i < n; i++ {
		t := epoch.Tid(i)
		if !c.Get(t).Leq(other.Get(t)) {
			return false
		}
	}
	return true
}

// EpochLeq reports e ⪯ c, i.e. whether epoch e happens before this clock:
// e <= c.Get(e.Tid()). It must not be called with the Shared marker.
func (c *VC) EpochLeq(e epoch.Epoch) bool {
	return e.Leq(c.Get(e.Tid()))
}

// Join merges other into c pointwise: c := c ⊔ other.
//
// Two fast paths keep the common synchronization shapes cheap: an empty
// other (a never-released lock) returns without scanning, and entries of
// other already covered by c are skipped without writing — so a join
// whose argument is entirely ⊑ c (re-acquiring a lock the thread itself
// released last, barrier re-arrivals) mutates nothing, grows nothing, and
// preserves c's cached Freeze snapshot.
func (c *VC) Join(other *VC) {
	c.m.Joins++
	if len(other.v) == 0 {
		return
	}
	c.m.JoinScanned += uint64(len(other.v))
	for i, oe := range other.v {
		t := epoch.Tid(i)
		// Same-tid epochs order by their clock bits, so the raw comparison
		// is the pointwise order (both sides are well-formed entries for t).
		if oe > c.Get(t) {
			c.Set(t, oe)
		}
	}
}

// Assign overwrites c with other's contents: c := other (Fig. 3's copy).
func (c *VC) Assign(other *VC) {
	n := len(c.v)
	if len(other.v) > n {
		n = len(other.v)
	}
	for i := 0; i < n; i++ {
		t := epoch.Tid(i)
		c.Set(t, other.Get(t))
	}
}

// Clone returns an independent copy of c.
func (c *VC) Clone() *VC {
	out := &VC{v: make([]epoch.Epoch, len(c.v))}
	copy(out.v, c.v)
	return out
}

// Equal reports whether two clocks agree at every index (treating implicit
// minimal entries as equal to explicit ones).
func (c *VC) Equal(other *VC) bool {
	return c.Leq(other) && other.Leq(c)
}

// Snapshot returns the raw epochs up to Size; used by the concurrent
// detectors to publish immutable copies.
func (c *VC) Snapshot() []epoch.Epoch {
	out := make([]epoch.Epoch, len(c.v))
	copy(out, c.v)
	return out
}

// FromSnapshot wraps a raw epoch slice (tid i at index i) as a VC. The slice
// must be well-formed; ownership transfers to the VC.
func FromSnapshot(v []epoch.Epoch) *VC {
	for i, e := range v {
		if e.Tid() != epoch.Tid(i) {
			panic("vc: FromSnapshot: ill-formed entry")
		}
	}
	return &VC{v: v}
}

// String renders the clock in the paper's ⟨c0,c1,...⟩ clock-list notation.
func (c *VC) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, e := range c.v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(e.String())
	}
	b.WriteByte('>')
	return b.String()
}
