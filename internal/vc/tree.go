package vc

import (
	"strings"
	"sync/atomic"

	"repro/internal/epoch"
)

// Tree is the lazy tree-clock representation of a vector clock, after the
// tree clocks of "Efficient Timestamping for Sampling-based Race
// Detection" (PAPERS.md): the value is still a dense epoch array — reads
// stay one bounds check, like Fig. 3 — but mutations are versioned so
// joins become monotone *copies* that skip everything the destination
// already covers, instead of O(threads) scans.
//
// Three layers of laziness, checked cheapest first on every join:
//
//  1. Whole-clock memo. Each Tree has a process-unique id and a
//     monotonically increasing version (ver), bumped on every mutation.
//     After joining source S at version v, the destination records
//     (S.id → v). While the destination stays monotone (only Join/Inc,
//     which never lower entries), a later join of S at the same version
//     is a proven no-op and returns without touching a single entry —
//     the re-acquire/barrier-re-arrival shape, counted as JoinsElided.
//  2. Last-writer shortcut. S tracks whether every mutation since some
//     version touched one single index (soloIdx, soloBase — in the
//     common case S is a thread clock whose only mutations are Inc(t)).
//     If the destination's memo version falls inside that window, only
//     S[soloIdx] can have changed: the join compares one entry.
//  3. Subtree skipping. S's array is divided into chunks of 16 entries,
//     each stamped with the version of its last mutation (chunkVer — the
//     flattened form of a tree clock's per-subtree last-update times).
//     The join scans only chunks newer than the memo version: subtrees
//     the destination has already covered are skipped without reading.
//
// Correctness of all three rests on one invariant: a memo entry
// (S.id → v) promises the destination covered S's value-at-v and has not
// decreased since. Join, JoinFrozen and Inc preserve it (they only raise
// entries); Set with a smaller epoch and Assign break it and therefore
// drop every memo the destination holds. Sources need no bookkeeping:
// their ver/chunkVer stamps advance on every mutation, including Assign.
//
// Like *VC, a Tree is NOT safe for concurrent use.
type Tree struct {
	v        []epoch.Epoch
	chunkVer []uint64 // version of each chunk's last mutation
	ver      uint64   // strictly increasing mutation counter (never reset)

	// soloIdx/soloBase implement the last-writer shortcut: when soloIdx
	// >= 0, every mutation with version in (soloBase, ver] touched only
	// index soloIdx.
	soloIdx  int32
	soloBase uint64

	id     uint64            // process-unique identity for join memos
	joined map[uint64]uint64 // source id → source ver at our last join

	// frozenMemo remembers the snapshots most recently joined in, so the
	// parcheck prepass's re-acquire of an unchanged lock is O(1) by
	// pointer identity (snapshots are interned there). Invalidated with
	// the join memos.
	frozenMemo [2]*Frozen

	frozen *Frozen
	m      Metrics
	pool   *Pool
}

const (
	treeChunkShift = 4 // 16 epochs (one 128-byte pair of cache lines) per chunk
	treeChunkLen   = 1 << treeChunkShift
)

// treeIDs issues process-unique Tree identities.
var treeIDs atomic.Uint64

// NewTree returns an empty (minimal) tree clock drawing backing storage
// from pool (nil pool means plain allocation).
func NewTree(pool *Pool) *Tree {
	return &Tree{soloIdx: -1, id: treeIDs.Add(1), pool: pool}
}

// Metrics returns the clock's structural counters.
func (c *Tree) Metrics() Metrics { return c.m }

// Size returns the length of the underlying representation.
func (c *Tree) Size() int { return len(c.v) }

// Get returns the epoch recorded for thread t (t@0 beyond the
// representation).
func (c *Tree) Get(t epoch.Tid) epoch.Epoch {
	if int(t) < len(c.v) {
		return c.v[t]
	}
	return epoch.Min(t)
}

// EpochLeq reports e ⪯ c (never call with the Shared marker).
func (c *Tree) EpochLeq(e epoch.Epoch) bool {
	return e.Leq(c.Get(e.Tid()))
}

// touch records a mutation of index i: it advances the clock's version,
// stamps i's chunk, and maintains the last-writer window.
func (c *Tree) touch(i int) {
	c.ver++
	if c.soloIdx != int32(i) {
		c.soloIdx = int32(i)
		c.soloBase = c.ver - 1
	}
	c.chunkVer[i>>treeChunkShift] = c.ver
}

// dropMemos forgets everything other clocks' values have been compared
// against: called on any mutation that can lower an entry, because the
// memos promise monotonicity.
func (c *Tree) dropMemos() {
	if len(c.joined) > 0 {
		clear(c.joined)
	}
	c.frozenMemo[0], c.frozenMemo[1] = nil, nil
}

// ensureCapacity grows to at least n entries with geometric capacity,
// minimal fill, chunk stamps for the new chunks, and pool recycling —
// the Tree twin of the dense method.
func (c *Tree) ensureCapacity(n int) {
	if n <= len(c.v) {
		return
	}
	old := len(c.v)
	if n > cap(c.v) {
		newCap := treeChunkLen
		for newCap < n {
			newCap *= 2
		}
		grown := c.pool.getSlice(newCap)[:n]
		copy(grown, c.v)
		c.pool.putSlice(c.v)
		c.v = grown
		c.m.Grows++
	} else {
		c.v = c.v[:n]
	}
	epoch.FillMin(c.v, 0, old)
	oldChunks := len(c.chunkVer)
	chunks := (n + treeChunkLen - 1) >> treeChunkShift
	for len(c.chunkVer) < chunks {
		c.chunkVer = append(c.chunkVer, 0)
	}
	// Fresh chunks hold only minimal epochs; version 0 marks them older
	// than any memo, so joins skip them until something real lands.
	for i := oldChunks; i < chunks; i++ {
		c.chunkVer[i] = 0
	}
}

// Set records epoch e for thread t (e.Tid() must equal t). A Set that
// lowers the entry breaks the monotonicity the join memos promise and
// drops them; Inc and Join never do.
func (c *Tree) Set(t epoch.Tid, e epoch.Epoch) {
	if e.Tid() != t {
		panic("vc: Set would break well-formedness: epoch tid mismatch")
	}
	cur := c.Get(t)
	if e == cur {
		return // value unchanged: keep the snapshot cache and all memos
	}
	if e < cur {
		c.dropMemos()
	}
	c.frozen = nil
	c.ensureCapacity(int(t) + 1)
	c.v[t] = e
	c.touch(int(t))
}

// Inc increments the t-component: V := inc_t(V).
func (c *Tree) Inc(t epoch.Tid) {
	c.Set(t, c.Get(t).Inc())
}

// setMonotone is Set for callers that have already established e >
// current (the join paths): no well-formedness or monotonicity re-checks.
func (c *Tree) setMonotone(t epoch.Tid, e epoch.Epoch) {
	c.frozen = nil
	c.ensureCapacity(int(t) + 1)
	c.v[t] = e
	c.touch(int(t))
}

// Join merges other into c pointwise: c := c ⊔ other.
func (c *Tree) Join(other Clock) {
	switch o := other.(type) {
	case *Tree:
		c.joinTree(o)
	case *VC:
		c.m.Joins++
		c.scanJoin(o.v, 0, len(o.v))
	default:
		c.m.Joins++
		n := other.Size()
		c.m.JoinScanned += uint64(n)
		for i := 0; i < n; i++ {
			t := epoch.Tid(i)
			if oe := other.Get(t); oe > c.Get(t) {
				c.setMonotone(t, oe)
			}
		}
	}
}

// joinTree is the lazy join: memo, last-writer window, then chunk scan.
func (c *Tree) joinTree(o *Tree) {
	c.m.Joins++
	if len(o.v) == 0 {
		return
	}
	last, seen := uint64(0), false
	if c.joined != nil {
		last, seen = c.joined[o.id]
	}
	if seen && last == o.ver {
		c.m.JoinsElided++
		return
	}
	if seen && o.soloIdx >= 0 && last >= o.soloBase {
		// Everything since our memo touched one index: compare only it.
		i := int(o.soloIdx)
		c.m.JoinScanned++
		t := epoch.Tid(i)
		if oe := o.v[i]; oe > c.Get(t) {
			c.setMonotone(t, oe)
		}
		c.remember(o)
		return
	}
	for ci := 0; ci < len(o.chunkVer); ci++ {
		if seen && o.chunkVer[ci] <= last {
			continue // subtree unchanged since our last join: skip
		}
		lo := ci << treeChunkShift
		hi := lo + treeChunkLen
		if hi > len(o.v) {
			hi = len(o.v)
		}
		c.scanJoin(o.v, lo, hi)
	}
	c.remember(o)
}

// scanJoin merges src[lo:hi] (well-formed entries for tids lo..hi-1).
func (c *Tree) scanJoin(src []epoch.Epoch, lo, hi int) {
	if hi <= lo {
		return
	}
	c.m.JoinScanned += uint64(hi - lo)
	for i := lo; i < hi; i++ {
		t := epoch.Tid(i)
		if oe := src[i]; oe > c.Get(t) {
			c.setMonotone(t, oe)
		}
	}
}

// remember records that c now covers o's value at o.ver.
func (c *Tree) remember(o *Tree) {
	if c.joined == nil {
		c.joined = make(map[uint64]uint64, 4)
	}
	c.joined[o.id] = o.ver
}

// JoinFrozen merges an immutable snapshot: c := c ⊔ f. Re-joining one of
// the two most recently joined snapshots (by pointer — the parcheck
// prepass interns them) is elided outright: c covered it and has not
// decreased since, so the join is a no-op.
func (c *Tree) JoinFrozen(f *Frozen) {
	c.m.Joins++
	if f == nil || len(f.v) == 0 {
		return
	}
	if f == c.frozenMemo[0] || f == c.frozenMemo[1] {
		c.m.JoinsElided++
		return
	}
	c.scanJoin(f.v, 0, len(f.v))
	c.frozenMemo[1] = c.frozenMemo[0]
	c.frozenMemo[0] = f
}

// Assign overwrites c with other's contents: c := other. The new value
// bears no monotone relation to the old, so c's own memos drop; c's
// version stamps advance (every chunk), so memos other clocks hold about
// c correctly invalidate too.
func (c *Tree) Assign(other Clock) {
	c.frozen = nil
	c.dropMemos()
	var src []epoch.Epoch
	switch o := other.(type) {
	case *Tree:
		src = o.v
	case *VC:
		src = o.v
	default:
		src = other.Snapshot()
	}
	c.ensureCapacity(len(src))
	copy(c.v, src)
	epoch.FillMin(c.v, 0, len(src))
	c.ver++
	for i := range c.chunkVer {
		c.chunkVer[i] = c.ver
	}
	c.soloIdx = -1
	c.soloBase = c.ver
}

// Freeze returns an immutable snapshot of the clock's current value,
// cached until the next mutation; see the dense Freeze for the contract.
func (c *Tree) Freeze() *Frozen {
	if c.frozen != nil {
		c.m.FreezeReuses++
		return c.frozen
	}
	c.frozen = freezeSlice(c.v, c.pool)
	c.m.Freezes++
	return c.frozen
}

// AdoptFrozen replaces the cached snapshot with an equal-valued canonical
// one (see Clock.AdoptFrozen).
func (c *Tree) AdoptFrozen(f *Frozen) { c.frozen = f }

// Snapshot returns a fresh copy of the raw epochs up to Size.
func (c *Tree) Snapshot() []epoch.Epoch {
	out := make([]epoch.Epoch, len(c.v))
	copy(out, c.v)
	return out
}

// String renders the clock in the paper's clock-list notation.
func (c *Tree) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, e := range c.v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(e.String())
	}
	b.WriteByte('>')
	return b.String()
}
