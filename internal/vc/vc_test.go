package vc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/epoch"
)

func TestZeroValueIsMinimal(t *testing.T) {
	c := New()
	for _, tid := range []epoch.Tid{0, 1, 100} {
		if got := c.Get(tid); got != epoch.Min(tid) {
			t.Errorf("Get(%d) = %v, want %v", tid, got, epoch.Min(tid))
		}
	}
	if c.Size() != 0 {
		t.Errorf("Size = %d", c.Size())
	}
}

func TestSetGetGrow(t *testing.T) {
	c := New()
	e := epoch.Make(5, 9)
	c.Set(5, e)
	if c.Size() != 6 {
		t.Errorf("Size = %d, want 6", c.Size())
	}
	if got := c.Get(5); got != e {
		t.Errorf("Get(5) = %v", got)
	}
	// Intermediate entries must have been filled with well-formed minimal
	// epochs.
	for i := epoch.Tid(0); i < 5; i++ {
		if got := c.Get(i); got != epoch.Min(i) {
			t.Errorf("Get(%d) = %v, want minimal", i, got)
		}
	}
}

func TestSetWellFormednessEnforced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Set with mismatched tid should panic")
		}
	}()
	New().Set(3, epoch.Make(4, 1))
}

func TestInc(t *testing.T) {
	c := New()
	c.Inc(2)
	c.Inc(2)
	c.Inc(0)
	if got := c.Get(2).Clock(); got != 2 {
		t.Errorf("clock(2) = %d", got)
	}
	if got := c.Get(0).Clock(); got != 1 {
		t.Errorf("clock(0) = %d", got)
	}
}

func TestLeqMixedSizes(t *testing.T) {
	small := FromClocks(1, 2)
	big := FromClocks(1, 2, 0, 0)
	if !small.Leq(big) || !big.Leq(small) {
		t.Error("clocks differing only in trailing minimal entries must be Leq-equal")
	}
	bigger := FromClocks(1, 2, 0, 1)
	if !small.Leq(bigger) {
		t.Error("small ⊑ bigger expected")
	}
	if bigger.Leq(small) {
		t.Error("bigger ⊑ small unexpected")
	}
}

func TestEpochLeq(t *testing.T) {
	c := FromClocks(4, 8)
	if !c.EpochLeq(epoch.Make(0, 4)) {
		t.Error("0@4 ⪯ <4,8> expected")
	}
	if c.EpochLeq(epoch.Make(0, 5)) {
		t.Error("0@5 ⪯ <4,8> unexpected")
	}
	if !c.EpochLeq(epoch.Make(7, 0)) {
		t.Error("7@0 ⪯ anything expected (implicit minimal entry)")
	}
}

func TestJoin(t *testing.T) {
	a := FromClocks(4, 0)
	b := FromClocks(0, 8, 3)
	a.Join(b)
	want := FromClocks(4, 8, 3)
	if !a.Equal(want) {
		t.Errorf("join = %v, want %v", a, want)
	}
	// Joining must not disturb the operand.
	if !b.Equal(FromClocks(0, 8, 3)) {
		t.Error("Join mutated its argument")
	}
}

func TestAssign(t *testing.T) {
	dst := FromClocks(9, 9, 9)
	src := FromClocks(1, 2)
	dst.Assign(src)
	if !dst.Equal(src) {
		t.Errorf("Assign: %v != %v", dst, src)
	}
	// The Fig. 1 release step: Sm.V becomes SA.V exactly, including
	// clearing entries src lacks.
	if dst.Get(2) != epoch.Min(2) {
		t.Errorf("Assign left stale entry: %v", dst.Get(2))
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromClocks(1, 2, 3)
	b := a.Clone()
	b.Inc(0)
	if a.Get(0).Clock() != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	a := FromClocks(3, 1, 4)
	b := FromSnapshot(a.Snapshot())
	if !a.Equal(b) {
		t.Errorf("round trip: %v vs %v", a, b)
	}
}

func TestFromSnapshotValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ill-formed snapshot should panic")
		}
	}()
	FromSnapshot([]epoch.Epoch{epoch.Make(1, 0)})
}

func TestString(t *testing.T) {
	if s := FromClocks(4, 0).String(); s != "<0@4,1@0>" {
		t.Errorf("String = %q", s)
	}
}

// randomVC builds a clock with entries for threads [0,n) drawn from rng.
func randomVC(rng *rand.Rand, n int) *VC {
	c := New()
	for i := 0; i < n; i++ {
		c.Set(epoch.Tid(i), epoch.Make(epoch.Tid(i), uint64(rng.Intn(16))))
	}
	return c
}

// Property: Join computes the least upper bound under ⊑.
func TestQuickJoinIsLub(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a := randomVC(rng, rng.Intn(6))
		b := randomVC(rng, rng.Intn(6))
		j := a.Clone()
		j.Join(b)
		if !a.Leq(j) || !b.Leq(j) {
			t.Fatalf("join not an upper bound: %v ⊔ %v = %v", a, b, j)
		}
		// Least: every entry of j equals the max of the operands, so any
		// other upper bound u satisfies j ⊑ u. Check against a sampled u.
		u := a.Clone()
		u.Join(b)
		u.Inc(epoch.Tid(rng.Intn(6)))
		if !j.Leq(u) {
			t.Fatalf("join not least: %v vs %v", j, u)
		}
	}
}

// Property: Join is commutative and associative, with ⊥V as identity.
func TestQuickJoinLattice(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 500; i++ {
		a := randomVC(rng, rng.Intn(5))
		b := randomVC(rng, rng.Intn(5))
		c := randomVC(rng, rng.Intn(5))

		ab := a.Clone()
		ab.Join(b)
		ba := b.Clone()
		ba.Join(a)
		if !ab.Equal(ba) {
			t.Fatalf("join not commutative: %v vs %v", ab, ba)
		}

		abc1 := ab.Clone()
		abc1.Join(c)
		bc := b.Clone()
		bc.Join(c)
		abc2 := a.Clone()
		abc2.Join(bc)
		if !abc1.Equal(abc2) {
			t.Fatalf("join not associative")
		}

		id := a.Clone()
		id.Join(New())
		if !id.Equal(a) {
			t.Fatalf("⊥V not identity")
		}
	}
}

// Property: Leq is a partial order.
func TestQuickLeqPartialOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		a := randomVC(rng, rng.Intn(5))
		b := randomVC(rng, rng.Intn(5))
		c := randomVC(rng, rng.Intn(5))
		if !a.Leq(a) {
			t.Fatal("Leq not reflexive")
		}
		if a.Leq(b) && b.Leq(a) && !a.Equal(b) {
			t.Fatal("Leq not antisymmetric")
		}
		if a.Leq(b) && b.Leq(c) && !a.Leq(c) {
			t.Fatal("Leq not transitive")
		}
	}
}

// Property: e ⪯ V iff the singleton clock {e} ⊑ V. This ties the epoch-VC
// fast comparison (the heart of FastTrack's O(1) checks) to the full
// pointwise order.
func TestQuickEpochLeqAgreesWithLeq(t *testing.T) {
	f := func(tid uint8, clk uint8, c0, c1, c2, c3 uint8) bool {
		tt := epoch.Tid(tid % 4)
		e := epoch.Make(tt, uint64(clk%16))
		v := FromClocks(uint64(c0%16), uint64(c1%16), uint64(c2%16), uint64(c3%16))
		single := New()
		single.Set(tt, e)
		return v.EpochLeq(e) == single.Leq(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Assign makes the destination Equal to the source regardless of
// prior contents or relative sizes.
func TestQuickAssignEqualizes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		dst := randomVC(rng, rng.Intn(7))
		src := randomVC(rng, rng.Intn(7))
		dst.Assign(src)
		if !dst.Equal(src) {
			t.Fatalf("Assign failed: %v vs %v", dst, src)
		}
	}
}

func BenchmarkJoin(b *testing.B) {
	a := randomVC(rand.New(rand.NewSource(1)), 16)
	c := randomVC(rand.New(rand.NewSource(2)), 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Join(c)
	}
}

func BenchmarkEpochLeq(b *testing.B) {
	v := randomVC(rand.New(rand.NewSource(3)), 16)
	e := epoch.Make(7, 3)
	for i := 0; i < b.N; i++ {
		if !v.EpochLeq(e) && v.Size() < 0 {
			b.Fatal("unreachable")
		}
	}
}
