package rtsim

import (
	"testing"

	"repro/internal/core"
)

func TestCompressedArraySweepsStayCompressed(t *testing.T) {
	d := core.NewV2(core.DefaultConfig())
	rt := New(d)
	main := rt.Main()
	arr := rt.NewCompressedArray(32)

	for pass := 0; pass < 4; pass++ {
		for i := 0; i < arr.Len(); i++ {
			if pass == 0 {
				arr.Store(main, i, int64(i))
			} else {
				arr.Load(main, i)
			}
		}
	}
	if !arr.Compressed() {
		t.Fatal("sweeps should stay compressed")
	}
	if len(rt.Reports()) != 0 {
		t.Fatalf("reports: %v", rt.Reports())
	}
	// Values behave like a normal array.
	if got := arr.Load(main, 7); got != 7 {
		t.Fatalf("value = %d", got)
	}
}

func TestCompressedArrayDetectsRaces(t *testing.T) {
	d := core.NewV2(core.DefaultConfig())
	rt := New(d)
	main := rt.Main()
	arr := rt.NewCompressedArray(16)

	c := main.Go(func(w *Thread) {
		for i := 0; i < arr.Len(); i++ {
			arr.Store(w, i, 1)
		}
	})
	for i := 0; i < arr.Len(); i++ {
		arr.Store(main, i, 2) // races with the child's sweep
	}
	main.Join(c)
	if len(rt.Reports()) == 0 {
		t.Fatal("racy sweeps not reported")
	}
}

func TestCompressedArrayOrderedUseIsClean(t *testing.T) {
	d := core.NewV2(core.DefaultConfig())
	rt := New(d)
	main := rt.Main()
	arr := rt.NewCompressedArray(16)
	mu := rt.NewMutex()

	// Two threads sweep under a lock: ordered, clean — and the sweeps are
	// interleaved with lock epochs, exercising the epoch checks in the
	// sweep tracker.
	c := main.Go(func(w *Thread) {
		mu.Lock(w)
		for i := 0; i < arr.Len(); i++ {
			arr.Store(w, i, 1)
		}
		mu.Unlock(w)
	})
	mu.Lock(main)
	for i := 0; i < arr.Len(); i++ {
		arr.Store(main, i, 2)
	}
	mu.Unlock(main)
	main.Join(c)
	if reports := rt.Reports(); len(reports) != 0 {
		t.Fatalf("false positives: %v", reports)
	}
}

// Detectors without snapshot support fall back to per-element shadowing
// with identical verdicts.
func TestCompressedArrayFallback(t *testing.T) {
	d := core.NewV1(core.DefaultConfig()) // no VarStater support
	rt := New(d)
	main := rt.Main()
	arr := rt.NewCompressedArray(8)
	if arr.Compressed() {
		t.Fatal("v1 cannot run compressed")
	}
	c := main.Go(func(w *Thread) { arr.Store(w, 3, 1) })
	arr.Store(main, 3, 2)
	main.Join(c)
	if len(rt.Reports()) == 0 {
		t.Fatal("fallback missed the race")
	}
}

func TestCompressedArrayBaseRun(t *testing.T) {
	rt := New(nil)
	main := rt.Main()
	arr := rt.NewCompressedArray(4)
	arr.Store(main, 2, 9)
	if got := arr.Load(main, 2); got != 9 {
		t.Fatalf("value = %d", got)
	}
	if arr.Compressed() {
		t.Fatal("base runs have no shadow at all")
	}
}

// Shadow ids must not collide with other instrumented entities.
func TestCompressedArrayIDIsolation(t *testing.T) {
	d := core.NewV2(core.DefaultConfig())
	rt := New(d)
	main := rt.Main()
	before := rt.NewVar()
	arr := rt.NewCompressedArray(8)
	after := rt.NewVar()

	before.Store(main, 1)
	for i := 0; i < 8; i++ {
		arr.Store(main, i, int64(i))
	}
	after.Store(main, 2)
	arr.Load(main, 5) // force expansion: element ids come into use
	for i := 0; i < 8; i++ {
		arr.Load(main, i)
	}
	before.Load(main)
	after.Load(main)
	if reports := rt.Reports(); len(reports) != 0 {
		t.Fatalf("id collision produced reports: %v", reports)
	}
}
