package rtsim

import (
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/trace"
)

func replayTrace(t *testing.T, tr trace.Trace) ([]core.Report, error) {
	t.Helper()
	d, err := core.New("vft-v2", core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rt := New(d)
	err = Replay(rt, trace.NewSliceSource(tr))
	return rt.Reports(), err
}

func TestReplayDetectsRace(t *testing.T) {
	reports, err := replayTrace(t, trace.Trace{
		trace.ForkOp(0, 1), trace.Wr(0, 0), trace.Wr(1, 0), trace.JoinOp(0, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("unsynchronized write-write replay produced no race report")
	}
}

func TestReplayCleanTrace(t *testing.T) {
	reports, err := replayTrace(t, trace.Trace{
		trace.ForkOp(0, 1),
		trace.Acq(1, 0), trace.Wr(1, 0), trace.Rel(1, 0),
		trace.Acq(0, 0), trace.Wr(0, 0), trace.Rel(0, 0),
		trace.JoinOp(0, 1),
		trace.Rd(0, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Fatalf("lock-protected replay raced: %v", reports)
	}
}

// TestReplayUnjoinedThreadsAwaited: threads the stream never joins still
// run to completion before Replay returns (no leaked goroutines, no join
// events invented), including grandchildren forked late.
func TestReplayUnjoinedThreadsAwaited(t *testing.T) {
	reports, err := replayTrace(t, trace.Trace{
		trace.ForkOp(0, 1),
		trace.ForkOp(1, 2), // grandchild, never joined
		trace.Wr(2, 5),
		trace.Wr(1, 3),
		// neither 1 nor 2 is joined
		trace.Wr(0, 7),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Fatalf("disjoint accesses raced: %v", reports)
	}
}

// TestReplayInfeasibleStream: a mid-stream feasibility violation surfaces
// as the positioned error and the delivered feasible prefix drains cleanly
// (the test would deadlock or leak otherwise).
func TestReplayInfeasibleStream(t *testing.T) {
	_, err := replayTrace(t, trace.Trace{
		trace.ForkOp(0, 1), trace.Wr(1, 0),
		trace.Rel(1, 5), // release of a never-acquired lock
		trace.Wr(0, 0),
	})
	var inf *trace.InfeasibleError
	if !errors.As(err, &inf) || inf.Index != 2 {
		t.Fatalf("want InfeasibleError at index 2, got %v", err)
	}
}

func TestReplayRejectsExtendedOps(t *testing.T) {
	_, err := replayTrace(t, trace.Trace{trace.VWr(0, 0)})
	if err == nil || !strings.Contains(err.Error(), "DesugarSource") {
		t.Fatalf("want extended-op rejection pointing at DesugarSource, got %v", err)
	}
}

func TestReplayRejectsJoinOfMain(t *testing.T) {
	_, err := replayTrace(t, trace.Trace{
		trace.ForkOp(0, 1), trace.Wr(0, 0), trace.JoinOp(1, 0),
	})
	if err == nil || !strings.Contains(err.Error(), "main thread") {
		t.Fatalf("want join-of-main rejection, got %v", err)
	}
}

func TestReplayRejectsControlledRuntime(t *testing.T) {
	pol, err := sched.NewPolicy("random", 1)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewControlled(nil, sched.New(pol))
	err = Replay(rt, trace.NewSliceSource(nil))
	if err == nil || !strings.Contains(err.Error(), "free-running") {
		t.Fatalf("want controlled-runtime rejection, got %v", err)
	}
}

// TestReplayDesugaredStream: the full pipeline — validate, lower, replay —
// over a trace with volatiles and barriers.
func TestReplayDesugaredStream(t *testing.T) {
	tr := trace.Trace{
		trace.ForkOp(0, 1),
		trace.VWr(0, 0), trace.VRd(1, 0),
		trace.BarrierOp(0, 0), trace.BarrierOp(1, 0),
		trace.Wr(1, 1),
		trace.JoinOp(0, 1),
		trace.Rd(0, 1),
	}
	d, err := core.New("vft-v2", core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rt := New(d)
	pipe := trace.DesugarSource(trace.ValidateSource(tr.Source(), nil), nil)
	if err := Replay(rt, pipe); err != nil {
		t.Fatal(err)
	}
	if reports := rt.Reports(); len(reports) != 0 {
		t.Fatalf("well-synchronized trace raced under replay: %v", reports)
	}
}

// TestReplayGoSyncStream: the replay pipeline handles the format-v2
// Go-synchronization kinds through the same lowering stage — a
// channel-ordered trace replays clean, a channel-unordered one races.
func TestReplayGoSyncStream(t *testing.T) {
	ext := &trace.Extensions{ChanCapacity: map[trace.Lock]int{0: 1}}
	run := func(tr trace.Trace) int {
		t.Helper()
		d, err := core.New("vft-v2", core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		rt := New(d)
		pipe := trace.DesugarSource(trace.ValidateSource(tr.Source(), ext), ext)
		if err := Replay(rt, pipe); err != nil {
			t.Fatal(err)
		}
		return len(rt.Reports())
	}
	// Cleanliness here must be schedule-independent (a live replay may
	// interleave the pseudo-locks either way — see
	// TestReplayGeneratedTraces), so the race-sensitive pair is guarded
	// by the structural join edge; the channel/atomic/once traffic rides
	// along to prove the v2 kinds flow through the lowering stage into a
	// live replay. The deterministic channel-edge ordering claims are
	// pinned by the offline tests (internal/trace, internal/hb).
	ordered := trace.Trace{
		trace.ForkOp(0, 1),
		trace.AStore(0, 3),
		trace.SendOp(0, 0),
		trace.RecvOp(1, 0),
		trace.ALoad(1, 3),
		trace.OnceOp(0, 2), trace.OnceOp(1, 2),
		trace.Wr(1, 0),
		trace.CloseOp(0, 0), trace.RecvOp(1, 0),
		trace.JoinOp(0, 1),
		trace.Rd(0, 0), // ordered by the join: clean in every schedule
	}
	if n := run(ordered); n != 0 {
		t.Fatalf("join-ordered trace raced under replay: %d reports", n)
	}
	racy := trace.Trace{
		trace.ForkOp(0, 1),
		trace.SendOp(0, 0),
		trace.RecvOp(1, 0),
		trace.Wr(0, 0), // after the send: the channel edge misses it in every schedule
		trace.Rd(1, 0),
		trace.JoinOp(0, 1),
	}
	if n := run(racy); n == 0 {
		t.Fatal("channel-unordered access pair replayed clean")
	}
}

// TestReplayGeneratedTraces: replay agrees with the detector's sequential
// verdict on generated fork/join-only traces. The restriction matters: a
// live re-execution may acquire locks in a different order than the
// recording, which legitimately changes the happens-before relation (and
// so the verdict) — that schedule-dependence is vft-run's documented
// behavior, explored systematically by internal/conformance. Fork/join
// edges, by contrast, are structural: identical in every interleaving, so
// with them as the only synchronization both paths must agree exactly
// (precision, Theorem 3.1).
func TestReplayGeneratedTraces(t *testing.T) {
	cfg := trace.DefaultGenConfig()
	cfg.Ops = 400
	cfg.AcquireWeight = 0 // fork/join-only synchronization; see above
	cfg.LockedFraction = 0
	for seed := int64(0); seed < 20; seed++ {
		tr := trace.Generate(rand.New(rand.NewSource(seed)), cfg)
		d, err := core.New("vft-v2", core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		seq := core.Replay(d, tr.Desugar(nil))

		d2, err := core.New("vft-v2", core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		rt := New(d2)
		pipe := trace.DesugarSource(trace.ValidateSource(tr.Source(), nil), nil)
		if err := Replay(rt, pipe); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if (len(seq) > 0) != (len(rt.Reports()) > 0) {
			t.Fatalf("seed %d: sequential verdict %d reports, replay %d",
				seed, len(seq), len(rt.Reports()))
		}
	}
}

// TestReplayBoundedChannels: a long single-producer stream flows through
// the bounded demux without deadlock even though the consumer thread count
// is far below the stream length.
func TestReplayBoundedChannels(t *testing.T) {
	const ops = 50 * replayBuffer
	gen := func() trace.Source {
		tr := make(trace.Trace, 0, ops+2)
		tr = append(tr, trace.ForkOp(0, 1))
		for i := 0; i < ops/2; i++ {
			tr = append(tr, trace.Wr(0, trace.Var(i%64)), trace.Wr(1, trace.Var(64+i%64)))
		}
		tr = append(tr, trace.JoinOp(0, 1))
		return trace.NewSliceSource(tr)
	}
	rt := New(nil) // uninstrumented: this test is about demux progress only
	if err := Replay(rt, gen()); err != nil {
		t.Fatal(err)
	}
}

// TestReplayJoinMidStream: regression test for a demux deadlock — when a
// join lands early in the stream and the joiner has more than a channel
// buffer of later ops, the joined thread must be able to terminate before
// end-of-stream (its channel closes at the join's stream position), or the
// joiner blocks in Join while the demux blocks on its full buffer.
func TestReplayJoinMidStream(t *testing.T) {
	tr := trace.Trace{trace.ForkOp(0, 1), trace.Wr(1, 0), trace.JoinOp(0, 1)}
	for i := 0; i < 4*replayBuffer; i++ {
		tr = append(tr, trace.Wr(0, trace.Var(i%16)))
	}
	trace.MustValidate(tr)
	if _, err := replayTrace(t, tr); err != nil {
		t.Fatal(err)
	}
}

// TestReplaySourceErrorPropagates: an underlying decode error (not just
// infeasibility) terminates the replay with that error.
func TestReplaySourceErrorPropagates(t *testing.T) {
	rt := New(nil)
	err := Replay(rt, failingSource{})
	if err == nil || err == io.EOF || !strings.Contains(err.Error(), "synthetic") {
		t.Fatalf("want synthetic source error, got %v", err)
	}
}

type failingSource struct{}

func (f failingSource) Next() (trace.Op, error) {
	return trace.Op{}, errors.New("synthetic decode failure")
}
