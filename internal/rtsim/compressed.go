package rtsim

import (
	"sync/atomic"

	"repro/internal/arrayshadow"
	"repro/internal/trace"
)

// CompressedArray is an Array whose shadow state goes through the
// arrayshadow compression layer (reference [58]): one VarState for the
// whole array while it is accessed as uniform sweeps, per-element states
// after divergence. Values behave exactly like Array's.
//
// If the runtime's detector does not support state snapshotting (only
// VerifiedFT-v2 does), or the runtime is a base run, accesses fall back to
// plain per-element events so programs are portable across detectors.
type CompressedArray struct {
	rt   *Runtime
	sh   *arrayshadow.Array // nil: fall back to per-element events
	cvar trace.Var
	base trace.Var
	vals []atomic.Int64
}

// NewCompressedArray allocates an instrumented array with a compressed
// shadow. The compressed id is allocated below the element ids so the
// detector's dense table stays small while the array is compressed.
func (rt *Runtime) NewCompressedArray(n int) *CompressedArray {
	cvar := trace.Var(rt.nextVar.Add(1) - 1)
	base := trace.Var(rt.nextVar.Add(int32(n)) - int32(n))
	a := &CompressedArray{rt: rt, cvar: cvar, base: base, vals: make([]atomic.Int64, n)}
	if d, ok := rt.d.(arrayshadow.Detector); ok {
		a.sh = arrayshadow.New(d, cvar, base, n)
	}
	return a
}

// Len returns the element count.
func (a *CompressedArray) Len() int { return len(a.vals) }

// Compressed reports whether the shadow is still in compressed mode (false
// for base runs and unsupported detectors).
func (a *CompressedArray) Compressed() bool {
	return a.sh != nil && !a.sh.Expanded()
}

// Load performs an instrumented read of element i.
func (a *CompressedArray) Load(t *Thread, i int) int64 {
	a.rt.yield(t)
	if a.sh != nil {
		a.sh.Read(t.id, i)
	} else if d := a.rt.d; d != nil {
		d.Read(t.id, a.base+trace.Var(i))
	}
	return a.vals[i].Load()
}

// Store performs an instrumented write of element i.
func (a *CompressedArray) Store(t *Thread, i int, val int64) {
	a.rt.yield(t)
	if a.sh != nil {
		a.sh.Write(t.id, i)
	} else if d := a.rt.d; d != nil {
		d.Write(t.id, a.base+trace.Var(i))
	}
	a.vals[i].Store(val)
}
