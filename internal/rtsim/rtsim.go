// Package rtsim is the RoadRunner substitute (§7): a small runtime that
// couples a target program's *real* synchronization (goroutines, mutexes,
// barriers, volatiles) with a race detector's event handlers, providing the
// two properties the paper's correctness argument assumes of RoadRunner:
//
//  1. a one-to-one mapping between program threads/locks/variables and
//     their shadow-state identities; and
//  2. each event handler executes inline in the thread performing the
//     operation, so handlers race against each other exactly as the
//     idealized implementations of §4–5 contemplate.
//
// Handler placement follows §4: the handlers for acquire and join run
// *after* the target operation (so the target lock is held / the child has
// terminated); all other handlers run *before* it.
//
// A Runtime built with a nil detector runs the target uninstrumented; the
// benchmark harness uses that as the base time when computing overheads,
// mirroring the paper's methodology (§8). Instrumented and base runs
// execute the identical target code — including the atomic value accesses
// Var uses to keep even deliberately racy example programs well-defined in
// Go — so the ratio isolates pure checking overhead.
package rtsim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Runtime owns the identity spaces for threads, variables and locks of one
// target-program execution, and the (optional) detector receiving its
// events.
type Runtime struct {
	d core.Detector // nil: uninstrumented base run
	s *sched.Scheduler
	m *rtMetrics // nil: event counting disabled (the default)

	nextTid  atomic.Int32
	nextVar  atomic.Int32
	nextLock atomic.Int32

	main *Thread
}

// Option configures a Runtime at construction.
type Option func(*Runtime)

// WithMetrics enables per-operation event counting into reg: each
// instrumented operation increments an rtsim.events.* counter striped by
// the acting thread, so enabling metrics adds one uncontended atomic add
// per event and disabling them (the default) costs one nil check. The
// counts quantify the §8 instrumentation-density story — how many shadow
// events per unit of target work each kernel generates — independently of
// which detector (if any) consumes the events.
func WithMetrics(reg *obs.Registry) Option {
	return func(rt *Runtime) { rt.m = newRTMetrics(reg) }
}

// rtMetrics holds the pre-resolved event counters so the hot paths never
// touch the registry's name map.
type rtMetrics struct {
	reads, writes, acquires, releases *obs.Counter
	forks, joins, volatiles, barriers *obs.Counter
}

func newRTMetrics(reg *obs.Registry) *rtMetrics {
	return &rtMetrics{
		reads:     reg.Counter("rtsim.events.read"),
		writes:    reg.Counter("rtsim.events.write"),
		acquires:  reg.Counter("rtsim.events.acquire"),
		releases:  reg.Counter("rtsim.events.release"),
		forks:     reg.Counter("rtsim.events.fork"),
		joins:     reg.Counter("rtsim.events.join"),
		volatiles: reg.Counter("rtsim.events.volatile"),
		barriers:  reg.Counter("rtsim.events.barrier"),
	}
}

// New returns a free-running Runtime delivering events to d; pass nil for
// an uninstrumented base run.
func New(d core.Detector, opts ...Option) *Runtime {
	rt := &Runtime{d: d}
	rt.nextTid.Store(1) // 0 is the main thread
	rt.main = &Thread{rt: rt, id: 0, done: make(chan struct{})}
	for _, opt := range opts {
		opt(rt)
	}
	return rt
}

// NewControlled returns a Runtime whose threads are serialized through s:
// every instrumented operation is a scheduling point, every blocking
// primitive is modeled inside the scheduler, and the whole execution —
// including the event linearization a detector or recorder observes — is a
// deterministic function of the program and the scheduler's seed.
//
// The calling goroutine is the main thread; after the target returns it
// must call Shutdown so un-joined children drain and the run quiesces.
// Under control the detector handlers run one at a time (the turn hand-off
// serializes them), so controlled runs explore operation interleavings;
// the free-running stress tests remain the coverage for intra-handler
// memory races.
func NewControlled(d core.Detector, s *sched.Scheduler, opts ...Option) *Runtime {
	rt := New(d, opts...)
	rt.s = s
	s.RegisterMain(0)
	return rt
}

// Shutdown ends a controlled run: the main thread exits the scheduler and
// blocks until every forked thread has run to completion. It is a no-op on
// a free-running Runtime.
func (rt *Runtime) Shutdown() {
	if rt.s != nil {
		rt.s.Exit(0)
		rt.s.Wait()
	}
}

// yield is the per-operation scheduling point; free-running runtimes pay
// one nil check.
func (rt *Runtime) yield(t *Thread) {
	if rt.s != nil {
		rt.s.Yield(int(t.id))
	}
}

// Detector returns the runtime's detector (nil for base runs).
func (rt *Runtime) Detector() core.Detector { return rt.d }

// Reports returns the detector's reports, or nil for a base run.
func (rt *Runtime) Reports() []core.Report {
	if rt.d == nil {
		return nil
	}
	return rt.d.Reports()
}

// Main returns the main thread (tid 0), from which the target starts.
func (rt *Runtime) Main() *Thread { return rt.main }

// Thread is an instrumented thread identity. All operations of a goroutine
// must go through the Thread it was handed; sharing a Thread between
// goroutines breaks the event model (and the detectors' confinement
// discipline), just as sharing a RoadRunner ThreadState would.
type Thread struct {
	rt   *Runtime
	id   epoch.Tid
	done chan struct{}
}

// ID returns the thread's identity.
func (t *Thread) ID() epoch.Tid { return t.id }

// Go forks a child thread: the fork event fires in the parent before the
// child goroutine starts, per the [Fork] handler contract. The returned
// Thread can be passed to Join.
func (t *Thread) Go(body func(*Thread)) *Thread {
	t.rt.yield(t)
	if m := t.rt.m; m != nil {
		m.forks.Inc(int(t.id))
	}
	id := epoch.Tid(t.rt.nextTid.Add(1) - 1)
	child := &Thread{rt: t.rt, id: id, done: make(chan struct{})}
	if s := t.rt.s; s != nil {
		s.Fork(int(t.id), int(id))
	}
	if d := t.rt.d; d != nil {
		d.Fork(t.id, child.id)
	}
	go func() {
		if s := t.rt.s; s != nil {
			// The exit notification must follow the done close (deferred
			// calls run in reverse order) so woken joiners never block on
			// the channel.
			defer s.Exit(int(id))
		}
		defer close(child.done)
		if s := t.rt.s; s != nil {
			s.Started(int(id))
		}
		body(child)
	}()
	return child
}

// Join blocks until the child goroutine has returned, then fires the join
// event ([Join] runs after the target operation). Several threads may join
// the same child; with the VerifiedFT variants that is safe by
// construction (a terminated thread's state is read-only), while the FT
// baselines' original [Join] rule mutates the joined state — the §3
// discipline hazard — so concurrent double joins must be externally
// ordered when driving ft-mutex or ft-cas.
func (t *Thread) Join(child *Thread) {
	if s := t.rt.s; s != nil {
		s.Yield(int(t.id))
		s.JoinThread(int(t.id), int(child.id))
	}
	<-child.done
	if m := t.rt.m; m != nil {
		m.joins.Inc(int(t.id))
	}
	if d := t.rt.d; d != nil {
		d.Join(t.id, child.id)
	}
}

// Parallel forks n workers, runs body(worker, index) in each, and joins
// them all — the fork/join skeleton every workload kernel uses.
func (t *Thread) Parallel(n int, body func(w *Thread, i int)) {
	children := make([]*Thread, n)
	for i := 0; i < n; i++ {
		i := i
		children[i] = t.Go(func(w *Thread) { body(w, i) })
	}
	for _, c := range children {
		t.Join(c)
	}
}

// Var is an instrumented memory location holding an int64. The value is
// accessed atomically so that even racy target programs stay well-defined
// Go (a Java program's racy reads are defined; a Go program's are not), in
// base and instrumented runs alike.
type Var struct {
	rt *Runtime
	id trace.Var
	v  atomic.Int64
}

// NewVar allocates one instrumented variable.
func (rt *Runtime) NewVar() *Var {
	return &Var{rt: rt, id: trace.Var(rt.nextVar.Add(1) - 1)}
}

// ID returns the variable's identity.
func (x *Var) ID() trace.Var { return x.id }

// Load performs an instrumented read by thread t.
func (x *Var) Load(t *Thread) int64 {
	x.rt.yield(t)
	if m := x.rt.m; m != nil {
		m.reads.Inc(int(t.id))
	}
	if d := x.rt.d; d != nil {
		d.Read(t.id, x.id)
	}
	return x.v.Load()
}

// Store performs an instrumented write by thread t.
func (x *Var) Store(t *Thread, val int64) {
	x.rt.yield(t)
	if m := x.rt.m; m != nil {
		m.writes.Inc(int(t.id))
	}
	if d := x.rt.d; d != nil {
		d.Write(t.id, x.id)
	}
	x.v.Store(val)
}

// Add performs an instrumented read-modify-write (one read event, one write
// event, like the compound bytecode RoadRunner would instrument).
func (x *Var) Add(t *Thread, delta int64) int64 {
	x.rt.yield(t)
	if m := x.rt.m; m != nil {
		m.reads.Inc(int(t.id))
		m.writes.Inc(int(t.id))
	}
	if d := x.rt.d; d != nil {
		d.Read(t.id, x.id)
		d.Write(t.id, x.id)
	}
	return x.v.Add(delta)
}

// Array is a contiguous block of instrumented variables — the shape of the
// JavaGrande kernels' data. Each element has its own shadow identity, as
// with RoadRunner's fine-grained array shadowing.
type Array struct {
	rt   *Runtime
	base trace.Var
	vals []atomic.Int64
}

// NewArray allocates n instrumented variables with consecutive ids.
func (rt *Runtime) NewArray(n int) *Array {
	base := trace.Var(rt.nextVar.Add(int32(n)) - int32(n))
	return &Array{rt: rt, base: base, vals: make([]atomic.Int64, n)}
}

// Len returns the element count.
func (a *Array) Len() int { return len(a.vals) }

// ID returns the shadow identity of element i.
func (a *Array) ID(i int) trace.Var { return a.base + trace.Var(i) }

// Load performs an instrumented read of element i.
func (a *Array) Load(t *Thread, i int) int64 {
	a.rt.yield(t)
	if m := a.rt.m; m != nil {
		m.reads.Inc(int(t.id))
	}
	if d := a.rt.d; d != nil {
		d.Read(t.id, a.base+trace.Var(i))
	}
	return a.vals[i].Load()
}

// Store performs an instrumented write of element i.
func (a *Array) Store(t *Thread, i int, val int64) {
	a.rt.yield(t)
	if m := a.rt.m; m != nil {
		m.writes.Inc(int(t.id))
	}
	if d := a.rt.d; d != nil {
		d.Write(t.id, a.base+trace.Var(i))
	}
	a.vals[i].Store(val)
}

// Add performs an instrumented read-modify-write of element i.
func (a *Array) Add(t *Thread, i int, delta int64) int64 {
	a.rt.yield(t)
	if m := a.rt.m; m != nil {
		m.reads.Inc(int(t.id))
		m.writes.Inc(int(t.id))
	}
	if d := a.rt.d; d != nil {
		d.Read(t.id, a.base+trace.Var(i))
		d.Write(t.id, a.base+trace.Var(i))
	}
	return a.vals[i].Add(delta)
}

// Mutex is an instrumented lock. Acquire events fire after the real lock is
// taken and release events before it is dropped, so handlers touching the
// LockState run under the target lock's protection, per the §4 discipline.
type Mutex struct {
	rt *Runtime
	id trace.Lock
	mu sync.Mutex
}

// NewMutex allocates an instrumented lock.
func (rt *Runtime) NewMutex() *Mutex {
	return &Mutex{rt: rt, id: trace.Lock(rt.nextLock.Add(1) - 1)}
}

// ID returns the lock's identity.
func (m *Mutex) ID() trace.Lock { return m.id }

// Lock acquires the lock as thread t. Under controlled scheduling the
// blocking is modeled by the scheduler (so a waiter leaves the runnable
// set), after which the real mutex acquisition below cannot contend.
func (m *Mutex) Lock(t *Thread) {
	if s := m.rt.s; s != nil {
		s.Yield(int(t.id))
		s.AcquireLock(int(t.id), int(m.id))
	}
	m.mu.Lock()
	if mm := m.rt.m; mm != nil {
		mm.acquires.Inc(int(t.id))
	}
	if d := m.rt.d; d != nil {
		d.Acquire(t.id, m.id)
	}
}

// Unlock releases the lock as thread t.
func (m *Mutex) Unlock(t *Thread) {
	if s := m.rt.s; s != nil {
		s.Yield(int(t.id))
	}
	if mm := m.rt.m; mm != nil {
		mm.releases.Inc(int(t.id))
	}
	if d := m.rt.d; d != nil {
		d.Release(t.id, m.id)
	}
	m.mu.Unlock()
	if s := m.rt.s; s != nil {
		s.ReleaseLock(int(t.id), int(m.id))
	}
}

// Volatile is an instrumented volatile location (§7): reads and writes are
// atomic and establish happens-before, but are never race-checked. The
// detector sees each access as an acquire/release pair on a dedicated
// shadow lock — the same lowering trace.Desugar uses — performed under an
// internal mutex so the LockState discipline holds.
type Volatile struct {
	rt *Runtime
	id trace.Lock
	mu sync.Mutex
	v  atomic.Int64
}

// NewVolatile allocates an instrumented volatile.
func (rt *Runtime) NewVolatile() *Volatile {
	return &Volatile{rt: rt, id: trace.Lock(rt.nextLock.Add(1) - 1)}
}

// Load performs a volatile read by t.
//
// The value access happens inside the same critical section as the shadow
// acquire/release: a reader that observes a writer's value is then
// guaranteed to have absorbed the writer's clock. Splitting them would let
// the target's value outrun the shadow edge and produce false positives on
// data published through the volatile.
func (v *Volatile) Load(t *Thread) int64 {
	v.rt.yield(t)
	if m := v.rt.m; m != nil {
		m.volatiles.Inc(int(t.id))
	}
	d := v.rt.d
	if d == nil {
		return v.v.Load()
	}
	v.mu.Lock()
	d.Acquire(t.id, v.id)
	val := v.v.Load()
	d.Release(t.id, v.id)
	v.mu.Unlock()
	return val
}

// Store performs a volatile write by t; see Load for why the value access
// and the shadow events share one critical section.
func (v *Volatile) Store(t *Thread, val int64) {
	v.rt.yield(t)
	if m := v.rt.m; m != nil {
		m.volatiles.Inc(int(t.id))
	}
	d := v.rt.d
	if d == nil {
		v.v.Store(val)
		return
	}
	v.mu.Lock()
	d.Acquire(t.id, v.id)
	v.v.Store(val)
	d.Release(t.id, v.id)
	v.mu.Unlock()
}

// Barrier is an instrumented cyclic barrier for a fixed party count (§7).
// Arrivals and departures each perform an acquire/release of a shadow lock
// under the barrier's mutex — the two-phase lowering of trace.Desugar — so
// every pre-barrier operation happens before every post-barrier operation
// in the detector's view, exactly as the real barrier orders the target.
type Barrier struct {
	rt      *Runtime
	id      trace.Lock
	parties int

	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	gen     uint64
}

// NewBarrier allocates a barrier for the given party count.
func (rt *Runtime) NewBarrier(parties int) *Barrier {
	if parties < 1 {
		panic(fmt.Sprintf("rtsim: barrier parties = %d", parties))
	}
	b := &Barrier{rt: rt, id: trace.Lock(rt.nextLock.Add(1) - 1), parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Await blocks thread t until all parties of the current round arrive.
func (b *Barrier) Await(t *Thread) {
	if m := b.rt.m; m != nil {
		m.barriers.Inc(int(t.id))
	}
	d := b.rt.d
	if s := b.rt.s; s != nil {
		// Controlled path: the round bookkeeping lives in the scheduler,
		// and the detector events need no extra mutex — the turn
		// serializes them. Arrival events run before blocking and
		// departure events after the last arrival, so every pre-barrier
		// operation happens before every post-barrier one in the
		// detector's view, as on the free-running path.
		s.Yield(int(t.id))
		if d != nil {
			d.Acquire(t.id, b.id)
			d.Release(t.id, b.id)
		}
		s.BarrierAwait(int(t.id), int(b.id), b.parties)
		if d != nil {
			d.Acquire(t.id, b.id)
			d.Release(t.id, b.id)
		}
		return
	}
	b.mu.Lock()
	if d != nil { // arrival: publish t's clock into the round
		d.Acquire(t.id, b.id)
		d.Release(t.id, b.id)
	}
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		gen := b.gen
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	if d != nil { // departure: absorb every arrival's clock
		d.Acquire(t.id, b.id)
		d.Release(t.id, b.id)
	}
	b.mu.Unlock()
}

// Handle is a one-shot publication cell for *Thread values with no
// detector events attached. Controlled drivers (internal/conformance) use
// it to hand a forked Thread to a joiner that is not the forker: the
// blocking is modeled in the scheduler so the turn is surrendered while
// waiting, but — unlike a Volatile — no acquire/release events reach the
// detector, so the analyzed trace gains no happens-before edge. The only
// effect on exploration is the constraint the original program order
// already implies (a join of u cannot run before fork(·,u)).
//
// On a free-running Runtime the same contract is met with a channel.
type Handle struct {
	rt  *Runtime
	key int
	ch  chan struct{}
	val *Thread
}

// NewHandle allocates an empty handle.
func (rt *Runtime) NewHandle() *Handle {
	// Handles draw keys from the lock id space: scheduler events live in
	// their own namespace, so sharing the counter merely guarantees
	// uniqueness.
	return &Handle{rt: rt, key: int(rt.nextLock.Add(1) - 1), ch: make(chan struct{})}
}

// Set publishes v; it must be called exactly once, by a thread holding the
// turn when the runtime is controlled.
func (h *Handle) Set(v *Thread) {
	h.val = v
	if s := h.rt.s; s != nil {
		s.Post(h.key)
		return
	}
	close(h.ch)
}

// Get blocks thread t until Set has run, then returns the published value.
func (h *Handle) Get(t *Thread) *Thread {
	if s := h.rt.s; s != nil {
		s.WaitEvent(int(t.id), h.key)
		return h.val
	}
	<-h.ch
	return h.val
}
