package rtsim

import (
	"sync"

	"repro/internal/trace"
)

// Cond is an instrumented condition variable associated with a Mutex,
// covering the wait/notify support of §7. The happens-before treatment is
// the standard FastTrack one: waiting is a release of the monitor followed
// (on wake-up) by a re-acquire — notification itself adds no edge beyond
// the monitor's, exactly as in the Java memory model.
type Cond struct {
	m *Mutex
	// key identifies the condition's wait queue to a controlled
	// scheduler; it is drawn from the lock id space for uniqueness but
	// never appears in a detector event.
	key int
	c   *sync.Cond
}

// NewCond returns a condition variable bound to m.
func (m *Mutex) NewCond() *Cond {
	return &Cond{m: m, key: int(m.rt.nextLock.Add(1) - 1), c: sync.NewCond(&m.mu)}
}

// Wait atomically releases the monitor, blocks until a Signal/Broadcast,
// and re-acquires the monitor before returning. The caller must hold m.
// As with sync.Cond, callers should re-check their predicate in a loop.
func (c *Cond) Wait(t *Thread) {
	rt := c.m.rt
	if s := rt.s; s != nil {
		// Controlled path: the monitor hand-off is modeled in the
		// scheduler. The real m.mu is released before parking and
		// re-taken after CondWait returns holding the scheduler-level
		// lock, at which point it cannot contend.
		s.Yield(int(t.id))
		if d := rt.d; d != nil {
			d.Release(t.id, c.m.id)
		}
		c.m.mu.Unlock()
		s.CondWait(int(t.id), c.key, int(c.m.id))
		c.m.mu.Lock()
		if d := rt.d; d != nil {
			d.Acquire(t.id, c.m.id)
		}
		return
	}
	if d := rt.d; d != nil {
		d.Release(t.id, c.m.id)
	}
	c.c.Wait()
	if d := rt.d; d != nil {
		d.Acquire(t.id, c.m.id)
	}
}

// Signal wakes one waiter. The caller must hold m.
func (c *Cond) Signal(t *Thread) {
	if s := c.m.rt.s; s != nil {
		s.Yield(int(t.id))
		s.CondSignal(c.key)
		return
	}
	c.c.Signal()
}

// Broadcast wakes all waiters. The caller must hold m.
func (c *Cond) Broadcast(t *Thread) {
	if s := c.m.rt.s; s != nil {
		s.Yield(int(t.id))
		s.CondBroadcast(c.key)
		return
	}
	c.c.Broadcast()
}

// Once models the class/static-initializer ordering of §7: the paper's
// implementation "captures the happens-before orderings between the static
// initializers and uses of a static variable or class". The first Do runs
// the initializer and publishes its clock; every later Do absorbs it before
// returning, so initializer writes never race with reader accesses.
type Once struct {
	rt   *Runtime
	id   trace.Lock
	mu   sync.Mutex
	done bool
}

// NewOnce allocates an initializer guard.
func (rt *Runtime) NewOnce() *Once {
	return &Once{rt: rt, id: trace.Lock(rt.nextLock.Add(1) - 1)}
}

// Do runs f exactly once across all callers; every caller returns ordered
// after the initializer's effects.
func (o *Once) Do(t *Thread, f func(*Thread)) {
	d := o.rt.d
	if s := o.rt.s; s != nil {
		// The guard's critical section contains yield points (f performs
		// instrumented operations), so under control it must be a
		// scheduler-level lock; the real o.mu below then never contends.
		s.Yield(int(t.id))
		s.AcquireLock(int(t.id), int(o.id))
		defer s.ReleaseLock(int(t.id), int(o.id))
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.done {
		o.done = true
		if d != nil {
			// The initializer runs inside the guard's shadow critical
			// section so its clock is published by the release below.
			d.Acquire(t.id, o.id)
		}
		f(t)
		if d != nil {
			d.Release(t.id, o.id)
		}
		return
	}
	if d != nil {
		// Absorb the initializer's (and previous users') clock.
		d.Acquire(t.id, o.id)
		d.Release(t.id, o.id)
	}
}
