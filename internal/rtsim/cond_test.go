package rtsim

import (
	"testing"

	"repro/internal/core"
)

// Bounded buffer via Cond: the canonical wait/notify program. Race-free —
// the monitor protects the buffer and the wait/notify edges order handoffs.
func TestCondBoundedBuffer(t *testing.T) {
	for _, d := range detectors(t) {
		rt := New(d)
		main := rt.Main()

		const capacity = 4
		const items = 100
		buf := rt.NewArray(capacity)
		count := rt.NewVar()
		mu := rt.NewMutex()
		notFull := mu.NewCond()
		notEmpty := mu.NewCond()

		producer := main.Go(func(w *Thread) {
			for i := 0; i < items; i++ {
				mu.Lock(w)
				for count.Load(w) == capacity {
					notFull.Wait(w)
				}
				buf.Store(w, i%capacity, int64(i))
				count.Add(w, 1)
				notEmpty.Signal(w)
				mu.Unlock(w)
			}
		})
		var sum int64
		for consumed := 0; consumed < items; consumed++ {
			mu.Lock(main)
			for count.Load(main) == 0 {
				notEmpty.Wait(main)
			}
			sum += buf.Load(main, consumed%capacity)
			count.Add(main, -1)
			notFull.Signal(main)
			mu.Unlock(main)
		}
		main.Join(producer)

		if reports := rt.Reports(); len(reports) != 0 {
			t.Fatalf("%s: bounded buffer false positive: %v", d.Name(), reports[0])
		}
		if want := int64(items * (items - 1) / 2); sum != want {
			t.Fatalf("%s: sum = %d, want %d (buffer semantics broken)", d.Name(), sum, want)
		}
	}
}

// Wait must order the waiter after the signaling thread's monitor section:
// data written before Signal is safely read after Wait returns.
func TestCondPublishesThroughMonitor(t *testing.T) {
	for _, d := range detectors(t) {
		rt := New(d)
		main := rt.Main()
		data := rt.NewVar()
		ready := rt.NewVar()
		mu := rt.NewMutex()
		cond := mu.NewCond()

		waiter := main.Go(func(w *Thread) {
			mu.Lock(w)
			for ready.Load(w) == 0 {
				cond.Wait(w)
			}
			mu.Unlock(w)
			data.Load(w) // ordered after the writer via the monitor
		})
		data.Store(main, 42) // before entering the monitor
		mu.Lock(main)
		ready.Store(main, 1)
		cond.Broadcast(main)
		mu.Unlock(main)
		main.Join(waiter)

		if reports := rt.Reports(); len(reports) != 0 {
			t.Fatalf("%s: wait/notify publication false positive: %v", d.Name(), reports[0])
		}
	}
}

// Once orders the initializer before every user, including users on other
// threads that never synchronize with the initializing thread otherwise —
// the §7 static-initializer pattern.
func TestOnceOrdersInitializer(t *testing.T) {
	for _, d := range detectors(t) {
		rt := New(d)
		main := rt.Main()
		table := rt.NewArray(8)
		once := rt.NewOnce()
		initialize := func(w *Thread) {
			for i := 0; i < table.Len(); i++ {
				table.Store(w, i, int64(i*i))
			}
		}

		main.Parallel(4, func(w *Thread, i int) {
			once.Do(w, initialize)
			for j := 0; j < table.Len(); j++ {
				table.Load(w, j)
			}
		})
		if reports := rt.Reports(); len(reports) != 0 {
			t.Fatalf("%s: static-initializer false positive: %v", d.Name(), reports[0])
		}
	}
}

// Without Once, the same pattern is racy — pins down that the clean result
// above is due to the Once edges, not detector blindness.
func TestInitializerWithoutOnceRaces(t *testing.T) {
	d, err := core.New("vft-v2", core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rt := New(d)
	main := rt.Main()
	table := rt.NewArray(8)
	first := main.Go(func(w *Thread) {
		for i := 0; i < table.Len(); i++ {
			table.Store(w, i, int64(i))
		}
	})
	// Reader races with the initializer.
	for j := 0; j < table.Len(); j++ {
		table.Load(main, j)
	}
	main.Join(first)
	if len(rt.Reports()) == 0 {
		t.Fatal("unordered initializer should race")
	}
}

func TestOnceRunsExactlyOnce(t *testing.T) {
	rt := New(nil)
	main := rt.Main()
	once := rt.NewOnce()
	runs := 0
	for i := 0; i < 5; i++ {
		once.Do(main, func(*Thread) { runs++ })
	}
	if runs != 1 {
		t.Fatalf("initializer ran %d times", runs)
	}
}
