package rtsim

import (
	"sync"
	"testing"

	"repro/internal/core"
)

func detectors(t *testing.T) []core.Detector {
	t.Helper()
	var out []core.Detector
	for _, name := range core.PreciseVariants() {
		d, err := core.New(name, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, d)
	}
	return out
}

func TestBaseRunHasNoDetector(t *testing.T) {
	rt := New(nil)
	m := rt.Main()
	x := rt.NewVar()
	x.Store(m, 41)
	if got := x.Load(m); got != 41 {
		t.Fatalf("Load = %d", got)
	}
	if rt.Reports() != nil {
		t.Fatal("base run produced reports")
	}
	if rt.Detector() != nil {
		t.Fatal("base run has a detector")
	}
}

func TestIdentitiesAreDistinct(t *testing.T) {
	rt := New(nil)
	a, b := rt.NewVar(), rt.NewVar()
	if a.ID() == b.ID() {
		t.Fatal("variable ids collide")
	}
	arr := rt.NewArray(4)
	if arr.ID(0) == arr.ID(3) || arr.ID(3) != arr.ID(0)+3 {
		t.Fatal("array ids not consecutive")
	}
	if arr.ID(0) <= b.ID() && b.ID() <= arr.ID(arr.Len()-1) {
		t.Fatal("array ids overlap scalar var ids")
	}
	m1, m2 := rt.NewMutex(), rt.NewMutex()
	if m1.ID() == m2.ID() {
		t.Fatal("lock ids collide")
	}
}

func TestRacyProgramIsCaught(t *testing.T) {
	for _, d := range detectors(t) {
		rt := New(d)
		main := rt.Main()
		x := rt.NewVar()
		c := main.Go(func(w *Thread) {
			for i := 0; i < 50; i++ {
				x.Store(w, int64(i))
			}
		})
		for i := 0; i < 50; i++ {
			x.Store(main, int64(-i))
		}
		main.Join(c)
		if len(rt.Reports()) == 0 {
			t.Errorf("%s: unsynchronized writers not reported", d.Name())
		}
	}
}

func TestLockedProgramIsClean(t *testing.T) {
	for _, d := range detectors(t) {
		rt := New(d)
		main := rt.Main()
		x := rt.NewVar()
		mu := rt.NewMutex()
		main.Parallel(4, func(w *Thread, i int) {
			for n := 0; n < 100; n++ {
				mu.Lock(w)
				x.Add(w, 1)
				mu.Unlock(w)
			}
		})
		if reports := rt.Reports(); len(reports) != 0 {
			t.Errorf("%s: false positives: %v", d.Name(), reports[0])
		}
		if got := x.Load(main); got != 400 {
			t.Errorf("%s: counter = %d, want 400 (target semantics broken)", d.Name(), got)
		}
	}
}

func TestForkJoinOrdering(t *testing.T) {
	for _, d := range detectors(t) {
		rt := New(d)
		main := rt.Main()
		x := rt.NewVar()
		x.Store(main, 1) // before fork: visible to child
		c := main.Go(func(w *Thread) {
			x.Add(w, 1)
		})
		main.Join(c)
		x.Add(main, 1) // after join: ordered after child
		if reports := rt.Reports(); len(reports) != 0 {
			t.Errorf("%s: fork/join false positive: %v", d.Name(), reports[0])
		}
		if got := x.Load(main); got != 3 {
			t.Errorf("%s: value = %d", d.Name(), got)
		}
	}
}

func TestVolatilePublication(t *testing.T) {
	for _, d := range detectors(t) {
		rt := New(d)
		main := rt.Main()
		data := rt.NewVar()
		flag := rt.NewVolatile()
		reader := main.Go(func(w *Thread) {
			// Spin until the writer publishes; every iteration re-checks
			// the volatile, as a Java reader would.
			for flag.Load(w) == 0 {
			}
			data.Load(w) // ordered after the writer's store via the volatile
		})
		data.Store(main, 42)
		flag.Store(main, 1)
		main.Join(reader)
		if reports := rt.Reports(); len(reports) != 0 {
			t.Errorf("%s: volatile publication false positive: %v", d.Name(), reports[0])
		}
	}
}

func TestVolatileDoesNotOrderUnrelatedData(t *testing.T) {
	// A volatile touched by both threads does NOT excuse a race on data
	// accessed before the volatile in one thread and after it in neither.
	for _, d := range detectors(t) {
		rt := New(d)
		main := rt.Main()
		data := rt.NewVar()
		flag := rt.NewVolatile()
		c := main.Go(func(w *Thread) {
			data.Store(w, 1) // racy: nothing orders this
			flag.Load(w)
		})
		flag.Load(main)
		data.Store(main, 2) // may or may not race depending on schedule —
		main.Join(c)
		_ = rt.Reports() // just exercise; verdict is schedule-dependent
	}
}

func TestBarrierOrdersPhases(t *testing.T) {
	const workers = 4
	for _, d := range detectors(t) {
		rt := New(d)
		main := rt.Main()
		arr := rt.NewArray(workers)
		bar := rt.NewBarrier(workers)
		main.Parallel(workers, func(w *Thread, i int) {
			for round := 0; round < 5; round++ {
				arr.Store(w, i, int64(round)) // phase 1: disjoint writes
				bar.Await(w)
				arr.Load(w, (i+1)%workers) // phase 2: read a neighbour
				bar.Await(w)
			}
		})
		if reports := rt.Reports(); len(reports) != 0 {
			t.Errorf("%s: barrier false positive: %v", d.Name(), reports[0])
		}
	}
}

func TestBarrierRequiresParties(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(nil).NewBarrier(0)
}

func TestParallelAssignsDistinctThreads(t *testing.T) {
	rt := New(nil)
	var mu sync.Mutex
	seen := map[int32]bool{}
	rt.Main().Parallel(8, func(w *Thread, i int) {
		mu.Lock()
		seen[int32(w.ID())] = true
		mu.Unlock()
	})
	if len(seen) != 8 {
		t.Fatalf("distinct tids = %d, want 8", len(seen))
	}
	if seen[0] {
		t.Fatal("worker got the main thread's tid")
	}
}

// Nested fork trees must keep identities and ordering straight.
func TestNestedForkTree(t *testing.T) {
	for _, d := range detectors(t) {
		rt := New(d)
		main := rt.Main()
		x := rt.NewVar()
		x.Store(main, 1)
		child := main.Go(func(c *Thread) {
			x.Add(c, 1)
			grand := c.Go(func(g *Thread) {
				x.Add(g, 1)
			})
			c.Join(grand)
			x.Add(c, 1)
		})
		main.Join(child)
		x.Add(main, 1)
		if reports := rt.Reports(); len(reports) != 0 {
			t.Errorf("%s: nested fork/join false positive: %v", d.Name(), reports[0])
		}
		if got := x.Load(main); got != 5 {
			t.Errorf("%s: value = %d, want 5", d.Name(), got)
		}
	}
}
