package rtsim

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/epoch"
	"repro/internal/trace"
)

// replayBuffer is the per-thread channel capacity of Replay. Any bound ≥ 1
// preserves the deadlock-freedom argument below; this one keeps threads
// fed across scheduling hiccups without holding a meaningful slice of the
// stream (256 ops ≈ 4 KB per thread).
const replayBuffer = 256

// Replay re-executes a core-language event stream as a concurrent program
// on rt: a single demultiplexer goroutine pulls operations from src and
// routes each to a bounded channel owned by its acting thread, and every
// trace thread becomes a simulated thread consuming its channel — forks
// spawn the consumer, joins meet it through a Handle. Replay concurrency
// is therefore preserved (handlers race exactly as in a live run) while
// memory stays bounded by threads × replayBuffer, never by stream length;
// this replaces materializing the trace and pre-splitting it per thread
// with ByThread-style projections.
//
// The stream must be core-language (DesugarSource first) and is checked
// incrementally for §2 feasibility as it is demultiplexed, which is what
// makes the bounded channels deadlock-free: in a feasible prefix, every
// operation a thread can block on (an acquire, a join) is preceded in
// stream order by what unblocks it, and delivery order is stream order —
// so among blocked threads the one waiting at the smallest stream position
// always has its unblocker already delivered, and induction gives global
// progress for any channel bound. For an acquire the unblocker is the
// preceding release, already delivered. For a join the unblocker is the
// joined thread's termination, so the demux closes that thread's channel
// at the join's stream position — constraint (4) says the thread has no
// later operations, so once it drains its (finitely many, all-delivered)
// remaining ops it exits and the join completes; without this eager close
// a joiner could wait on end-of-stream while the demux waits on the
// joiner's full buffer. An infeasible or failing source terminates
// delivery; the feasible prefix already delivered then drains by the same
// argument, every simulated thread exits, and the source's error is
// returned.
//
// Replay requires a free-running Runtime. Under controlled scheduling the
// turn handoff and demux backpressure can deadlock (a turn-holding thread
// may wait on a channel the demux cannot fill while the demux waits on a
// thread without the turn), so controlled drivers keep materialized
// per-thread projections; see internal/conformance.FromTrace.
//
// Joining thread 0 is rejected: the main thread is the caller and never
// terminates within the replay, so such a join (legal under §2 when main
// acts no further) cannot be given its blocking semantics here.
//
// Replay returns after the stream ends AND every simulated thread has run
// to completion, so the detector is quiescent and unjoined threads never
// leak; threads the stream does not join are awaited without emitting join
// events, leaving the analyzed trace exactly the stream's.
func Replay(rt *Runtime, src trace.Source) error {
	if rt.s != nil {
		return fmt.Errorf("rtsim: Replay requires a free-running Runtime (controlled replay pre-splits per thread; see internal/conformance)")
	}
	r := &replayer{
		rt:      rt,
		chans:   map[epoch.Tid]chan trace.Op{},
		closed:  map[epoch.Tid]bool{},
		handles: map[epoch.Tid]*Handle{},
		vars:    map[trace.Var]*Var{},
		locks:   map[trace.Lock]*Mutex{},
	}
	// Resolved before the demux goroutine starts mutating the map.
	mainCh := make(chan trace.Op, replayBuffer)
	r.chans[0] = mainCh

	var demuxErr error
	demuxDone := make(chan struct{})
	go func() {
		defer close(demuxDone)
		demuxErr = r.demux(src)
	}()

	r.exec(rt.Main(), mainCh)
	<-demuxDone
	r.await()
	return demuxErr
}

// replayer carries the identity maps shared by the demux goroutine and the
// simulated threads. The mutex guards only map structure; the values
// (channels, handles, instrumented vars/locks) synchronize themselves.
type replayer struct {
	rt *Runtime

	mu       sync.Mutex
	chans    map[epoch.Tid]chan trace.Op
	closed   map[epoch.Tid]bool // channels closed early at a join
	handles  map[epoch.Tid]*Handle
	vars     map[trace.Var]*Var
	locks    map[trace.Lock]*Mutex
	children []*Thread
}

// demux pulls the stream and routes each op to its thread's channel,
// validating incrementally. All channels close when it returns, whatever
// the reason, so consumers always drain and exit.
func (r *replayer) demux(src trace.Source) error {
	defer r.closeAll()
	v := trace.NewValidator()
	v.MaxLock = 1<<31 - 1 // lowered streams carry remapped/pseudo lock ids
	for {
		op, err := src.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if !op.Kind.IsCore() {
			return fmt.Errorf("rtsim: replay of extended op %v at #%d (DesugarSource first)", op, v.Count())
		}
		if op.Kind == trace.Join && op.U == 0 {
			return fmt.Errorf("rtsim: replay cannot join the main thread (op #%d)", v.Count())
		}
		if err := v.Check(op); err != nil {
			return err
		}
		switch op.Kind {
		case trace.Fork:
			// The child's channel and handle must exist before the fork op
			// reaches its executor (and the validator has just guaranteed
			// no op of the child precedes this point).
			r.mu.Lock()
			r.chans[op.U] = make(chan trace.Op, replayBuffer)
			r.handles[op.U] = r.rt.NewHandle()
			r.mu.Unlock()
		case trace.Join:
			// No op of the joined thread follows this point (constraint 4,
			// just validated), so its channel can close now — which is what
			// lets it terminate and the joiner's Join return; see the
			// deadlock-freedom argument above. Re-joins find it closed
			// already. The entry stays in chans so a fork op still waiting
			// in the forking thread's buffer resolves its channel.
			r.mu.Lock()
			if !r.closed[op.U] {
				r.closed[op.U] = true
				close(r.chans[op.U])
			}
			r.mu.Unlock()
		}
		r.mu.Lock()
		ch := r.chans[op.T]
		r.mu.Unlock()
		ch <- op
	}
}

func (r *replayer) closeAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for tid, ch := range r.chans {
		if !r.closed[tid] {
			r.closed[tid] = true
			close(ch)
		}
	}
}

// exec is one simulated thread's loop: consume the thread's channel until
// it closes, mapping trace operations onto the instrumented primitives.
func (r *replayer) exec(self *Thread, ch chan trace.Op) {
	for op := range ch {
		switch op.Kind {
		case trace.Read:
			r.varFor(op.X).Load(self)
		case trace.Write:
			r.varFor(op.X).Store(self, int64(op.T)+1)
		case trace.Acquire:
			r.lockFor(op.M).Lock(self)
		case trace.Release:
			r.lockFor(op.M).Unlock(self)
		case trace.Fork:
			r.mu.Lock()
			uch, h := r.chans[op.U], r.handles[op.U]
			r.mu.Unlock()
			child := self.Go(func(w *Thread) { r.exec(w, uch) })
			r.mu.Lock()
			r.children = append(r.children, child)
			r.mu.Unlock()
			h.Set(child)
		case trace.Join:
			r.mu.Lock()
			h := r.handles[op.U]
			r.mu.Unlock()
			self.Join(h.Get(self))
		}
	}
}

func (r *replayer) varFor(x trace.Var) *Var {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.vars[x]
	if !ok {
		v = r.rt.NewVar()
		r.vars[x] = v
	}
	return v
}

func (r *replayer) lockFor(m trace.Lock) *Mutex {
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.locks[m]
	if !ok {
		l = r.rt.NewMutex()
		r.locks[m] = l
	}
	return l
}

// await blocks until every forked thread has completed, without emitting
// join events. The children slice may still grow while awaiting (a child
// forks grandchildren before it exits), so iterate to a fixed point; a
// finished child's forks are registered before its done channel closes,
// which orders the append before the read here.
func (r *replayer) await() {
	for i := 0; ; i++ {
		r.mu.Lock()
		if i >= len(r.children) {
			r.mu.Unlock()
			return
		}
		c := r.children[i]
		r.mu.Unlock()
		<-c.done
	}
}
