package reduction

// This file transcribes the execution paths of the VerifiedFT event
// handlers — v2 (Fig. 4) and v1 (Fig. 3) — into labeled action sequences.
// Every label is *derived* from the synchronization discipline via the
// Classify functions, not hand-assigned, so a discipline change that broke
// reducibility would surface as a failing check.

// v2ReadPaths enumerates the execution paths of Fig. 4's read handler
// (lines 127-152).
func v2ReadPaths() []Path {
	// Common prologue: thread-local reads of st.t and st.V[t].
	prologue := []Action{
		{Mover: ClassifyThreadState(), Desc: "read st.t"},
		{Mover: ClassifyThreadState(), Desc: "read st.V[t] (cached epoch)"},
	}
	// The pure block's unlocked read of sx.R. Reading a non-Shared value
	// is a non-mover; reading Shared is a right-mover (R immutable once
	// Shared).
	pureReadRNotShared := Action{Mover: ClassifyR(false, false, false), Pure: true, Desc: "pure: read sx.R (not Shared)"}
	pureReadRShared := Action{Mover: ClassifyR(false, false, true), Pure: true, Desc: "pure: read sx.R (= Shared)"}

	lockAcq := Action{Mover: ClassifyLock(true), Desc: "acquire sx"}
	lockRel := Action{Mover: ClassifyLock(false), Desc: "release sx"}

	// Slow-path body prefix after re-reading under the lock.
	slowPrefix := []Action{
		{Mover: ClassifyR(false, true, false), Desc: "read sx.R (locked)"},
		{Mover: ClassifyW(false, true), Desc: "read sx.W (locked)"},
		{Mover: ClassifyThreadState(), Desc: "read st.V[tid(W)]"},
	}

	var paths []Path
	add := func(name string, returnsInPure bool, actions ...[]Action) {
		p := Path{Handler: "read", Name: name, ReturnsInPure: returnsInPure}
		for _, chunk := range actions {
			p.Actions = append(p.Actions, chunk...)
		}
		paths = append(paths, p)
	}

	// [Read Same Epoch] fast path: returns inside the pure block.
	add("[Read Same Epoch] fast path", true,
		prologue, []Action{pureReadRNotShared})

	// [Read Shared Same Epoch] fast path: R (read Shared), N (read the
	// vector pointer unlocked), B (read own entry) — the paper's RNB.
	add("[Read Shared Same Epoch] fast path", true,
		prologue, []Action{
			pureReadRShared,
			{Mover: ClassifyVPointer(false, false, true), Pure: true, Desc: "pure: read sx.V pointer (unlocked)"},
			{Mover: ClassifyVEntry(false, false, true, true), Pure: true, Desc: "pure: read sx.V[t] (own entry, unlocked)"},
		})

	// [Read Exclusive]: pure block missed (treated as skipped/B), then the
	// locked slow path ending in the N write of sx.R.
	add("[Read Exclusive]", false,
		prologue, []Action{pureReadRNotShared},
		[]Action{lockAcq},
		slowPrefix,
		[]Action{
			{Mover: ClassifyThreadState(), Desc: "read st.V[tid(R)]"},
			{Mover: ClassifyR(true, true, false), Desc: "write sx.R := E_t (locked)"},
			lockRel,
		})

	// [Read Share]: writes both vector entries (unshared: lock-protected
	// B), then publishes Shared with the N write to sx.R.
	add("[Read Share]", false,
		prologue, []Action{pureReadRNotShared},
		[]Action{lockAcq},
		slowPrefix,
		[]Action{
			{Mover: ClassifyThreadState(), Desc: "read st.V[tid(R)]"},
			{Mover: ClassifyVEntry(true, true, false, true), Desc: "write sx.V[tid(R)] (locked, unshared)"},
			{Mover: ClassifyVEntry(true, true, false, true), Desc: "write sx.V[t] (locked, unshared)"},
			{Mover: ClassifyR(true, true, false), Desc: "write sx.R := Shared (locked)"},
			lockRel,
		})

	// [Read Shared] slow path: may resize the vector (locked N write to
	// the pointer) and writes the own entry (B).
	add("[Read Shared] (with resize)", false,
		prologue, []Action{pureReadRShared},
		[]Action{lockAcq},
		[]Action{
			{Mover: ClassifyR(false, true, false), Desc: "read sx.R (locked)"},
			{Mover: ClassifyW(false, true), Desc: "read sx.W (locked)"},
			{Mover: ClassifyThreadState(), Desc: "read st.V[tid(W)]"},
			{Mover: ClassifyVPointer(false, true, true), Desc: "read sx.V pointer (locked)"},
			{Mover: ClassifyVPointer(true, true, true), Desc: "write sx.V pointer (resize, locked)"},
			{Mover: ClassifyVEntry(true, true, true, true), Desc: "write sx.V[t] (own entry, locked)"},
			lockRel,
		})

	// [Write-Read Race]: the check fails and the handler reports; the path
	// to the failed assert is the slow prefix.
	add("[Write-Read Race]", false,
		prologue, []Action{pureReadRNotShared},
		[]Action{lockAcq},
		slowPrefix,
		[]Action{lockRel})

	return paths
}

// v2WritePaths enumerates the execution paths of Fig. 4's write handler
// (lines 154-173).
func v2WritePaths() []Path {
	prologue := []Action{
		{Mover: ClassifyThreadState(), Desc: "read st.t"},
		{Mover: ClassifyThreadState(), Desc: "read st.V[t] (cached epoch)"},
	}
	pureReadW := Action{Mover: ClassifyW(false, false), Pure: true, Desc: "pure: read sx.W (unlocked)"}
	lockAcq := Action{Mover: ClassifyLock(true), Desc: "acquire sx"}
	lockRel := Action{Mover: ClassifyLock(false), Desc: "release sx"}
	slowPrefix := []Action{
		{Mover: ClassifyW(false, true), Desc: "read sx.W (locked)"},
		{Mover: ClassifyThreadState(), Desc: "read st.V[tid(W)]"},
		{Mover: ClassifyR(false, true, false), Desc: "read sx.R (locked)"},
	}

	var paths []Path
	add := func(name string, returnsInPure bool, actions ...[]Action) {
		p := Path{Handler: "write", Name: name, ReturnsInPure: returnsInPure}
		for _, chunk := range actions {
			p.Actions = append(p.Actions, chunk...)
		}
		paths = append(paths, p)
	}

	// [Write Same Epoch] fast path: one unlocked N read, return in pure.
	add("[Write Same Epoch] fast path", true, prologue, []Action{pureReadW})

	// [Write Exclusive]: locked checks then the N write of sx.W.
	add("[Write Exclusive]", false,
		prologue, []Action{pureReadW},
		[]Action{lockAcq},
		slowPrefix,
		[]Action{
			{Mover: ClassifyThreadState(), Desc: "read st.V[tid(R)]"},
			{Mover: ClassifyW(true, true), Desc: "write sx.W := E_t (locked)"},
			lockRel,
		})

	// [Write Shared]: the full vector comparison (locked B reads of every
	// entry) then the N write of sx.W.
	add("[Write Shared]", false,
		prologue, []Action{pureReadW},
		[]Action{lockAcq},
		slowPrefix,
		[]Action{
			{Mover: ClassifyVPointer(false, true, true), Desc: "read sx.V pointer (locked)"},
			{Mover: ClassifyVEntry(false, true, true, false), Desc: "read sx.V[0] (locked)"},
			{Mover: ClassifyVEntry(false, true, true, false), Desc: "read sx.V[1] (locked)"},
			{Mover: ClassifyW(true, true), Desc: "write sx.W := E_t (locked)"},
			lockRel,
		})

	// [Write-Write Race]: failed assert inside the critical section.
	add("[Write-Write Race]", false,
		prologue, []Action{pureReadW},
		[]Action{lockAcq},
		slowPrefix[:2],
		[]Action{lockRel})

	return paths
}

// v2SyncPaths enumerates the acquire/release/fork/join handlers, whose
// accesses are all both-movers under the §4 discipline (the target lock is
// held; thread states are in their confined or read-only phases).
func v2SyncPaths() []Path {
	body := func(handler string, n int) Path {
		p := Path{Handler: handler, Name: "only path"}
		for i := 0; i < n; i++ {
			p.Actions = append(p.Actions,
				Action{Mover: B, Desc: "vector-clock element op (protected per discipline)"})
		}
		return p
	}
	return []Path{
		body("acquire", 6), // St.V ⊔= Sm.V element ops under lock m
		body("release", 7), // Sm.V := St.V, inc — under lock m
		body("fork", 7),    // Su.V ⊔= St.V — su still child-confined
		body("join", 6),    // St.V ⊔= Su.V — su read-only after termination
	}
}

// V2Paths returns every execution path of every VerifiedFT-v2 handler.
func V2Paths() []Path {
	var out []Path
	out = append(out, v2ReadPaths()...)
	out = append(out, v2WritePaths()...)
	out = append(out, v2SyncPaths()...)
	return out
}

// V1Paths returns the VerifiedFT-v1 handler paths: identical slow-path
// bodies but with the fast-path checks *inside* the critical section, so
// every access is lock-protected (B between R and L).
func V1Paths() []Path {
	mk := func(handler, name string, bodyLen int) Path {
		p := Path{Handler: handler, Name: name}
		p.Actions = append(p.Actions,
			Action{Mover: ClassifyThreadState(), Desc: "read st.t"},
			Action{Mover: ClassifyThreadState(), Desc: "read st.V[t]"},
			Action{Mover: ClassifyLock(true), Desc: "acquire sx"})
		for i := 0; i < bodyLen; i++ {
			p.Actions = append(p.Actions, Action{Mover: B, Desc: "lock-protected access"})
		}
		p.Actions = append(p.Actions, Action{Mover: ClassifyLock(false), Desc: "release sx"})
		return p
	}
	var out []Path
	for _, n := range []string{"[Read Same Epoch]", "[Read Exclusive]", "[Read Share]", "[Read Shared]"} {
		out = append(out, mk("read", n, 5))
	}
	for _, n := range []string{"[Write Same Epoch]", "[Write Exclusive]", "[Write Shared]"} {
		out = append(out, mk("write", n, 4))
	}
	out = append(out, v2SyncPaths()...)
	return out
}

// BrokenPaths returns deliberately non-serializable handler designs, used
// to demonstrate the checker rejects them:
//
//   - a write handler whose same-epoch check is hoisted out of the lock
//     *without* the pure-block discipline (the naive optimization §5 warns
//     about): its slow path reads sx.W unlocked (N) and later writes sx.W
//     under the lock (N) — two non-movers;
//   - a read handler that acquires the lock again after its commit point.
func BrokenPaths() []Path {
	return []Path{
		{
			Handler: "write", Name: "naive unlocked check, no pure block",
			Actions: []Action{
				{Mover: B, Desc: "read st.V[t]"},
				{Mover: ClassifyW(false, false), Desc: "read sx.W (unlocked, NOT pure)"},
				{Mover: ClassifyLock(true), Desc: "acquire sx"},
				{Mover: ClassifyW(true, true), Desc: "write sx.W (locked)"},
				{Mover: ClassifyLock(false), Desc: "release sx"},
			},
		},
		{
			Handler: "read", Name: "lock re-acquired after commit",
			Actions: []Action{
				{Mover: ClassifyLock(true), Desc: "acquire sx"},
				{Mover: ClassifyR(true, true, false), Desc: "write sx.R (locked)"},
				{Mover: ClassifyLock(false), Desc: "release sx"},
				{Mover: ClassifyLock(true), Desc: "re-acquire sx"},
				{Mover: ClassifyLock(false), Desc: "release sx"},
			},
		},
	}
}
