package reduction

import "fmt"

// CheckResult is the verdict on one path.
type CheckResult struct {
	Path Path
	OK   bool
	// Reason explains a failure, e.g. "R at step 5 after the non-mover".
	Reason string
}

// Reducible checks one execution path against Lipton's pattern
// (B|R)*[N](B|L)*.
//
// Pure blocks (§5) are handled per the paper's proof strategy: a normally
// terminating pure block does not change state and is observationally
// equivalent to a skipped block, so when the path continues past the block,
// every action inside it is treated as a both-mover. When the path returns
// *inside* the pure block (a fast path), the block's actions keep their
// real labels and the (shorter) path must reduce on its own.
func Reducible(p Path) CheckResult {
	phase := 0 // 0: (B|R)*, 1: after the single N, accepting (B|L)*
	for i, a := range p.Actions {
		m := a.Mover
		if a.Pure && !p.ReturnsInPure {
			m = B
		}
		switch phase {
		case 0:
			switch m {
			case B, R:
				// still in the pre-commit phase
			case N:
				phase = 1
			case L:
				// An L in phase 0 is fine: it is also the start of the
				// post-commit phase with the optional N skipped.
				phase = 1
			}
		case 1:
			switch m {
			case B, L:
				// post-commit
			case R:
				return fail(p, i, "right-mover after the commit point")
			case N:
				return fail(p, i, "second non-mover")
			}
		}
	}
	return CheckResult{Path: p, OK: true}
}

func fail(p Path, step int, why string) CheckResult {
	return CheckResult{
		Path:   p,
		Reason: fmt.Sprintf("step %d (%s): %s", step, p.Actions[step].Desc, why),
	}
}

// CheckAll verifies every path and returns the failures.
func CheckAll(paths []Path) []CheckResult {
	var bad []CheckResult
	for _, p := range paths {
		if res := Reducible(p); !res.OK {
			bad = append(bad, res)
		}
	}
	return bad
}
