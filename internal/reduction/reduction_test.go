package reduction

import (
	"strings"
	"testing"
)

func TestReduciblePatterns(t *testing.T) {
	mk := func(movers ...Mover) Path {
		p := Path{Handler: "h", Name: "synthetic"}
		for _, m := range movers {
			p.Actions = append(p.Actions, Action{Mover: m, Desc: m.String()})
		}
		return p
	}
	good := []Path{
		mk(),              // empty
		mk(B, B, B),       // all both-movers
		mk(R, B, N, B, L), // canonical lock pattern
		mk(R, N, L),       //
		mk(B, R, R, B, N), // no post-phase
		mk(N),             // single atomic action
		mk(L, B),          // release first (phase 2 from the start)
		mk(R, B, L),       // no non-mover at all
		mk(B, N, L, L, B), //
	}
	for _, p := range good {
		if res := Reducible(p); !res.OK {
			t.Errorf("%v should be reducible: %s", p, res.Reason)
		}
	}
	bad := []Path{
		mk(N, N),          // two non-movers
		mk(N, R),          // right-mover after commit
		mk(R, N, B, R),    //
		mk(L, N),          // non-mover after a left-mover
		mk(R, L, N),       // L commits; N after
		mk(N, B, B, N, L), //
	}
	for _, p := range bad {
		if res := Reducible(p); res.OK {
			t.Errorf("%v should NOT be reducible", p)
		}
	}
}

func TestPureBlockCollapsesWhenPassedThrough(t *testing.T) {
	// An N inside a pure block is fatal on a fast path (ReturnsInPure)
	// only if it breaks the pattern; when the path continues past the
	// block, the block is equivalent to skipped and collapses to B.
	p := Path{
		Handler: "write", Name: "slow path through pure block",
		Actions: []Action{
			{Mover: N, Pure: true, Desc: "pure read"},
			{Mover: R, Desc: "acquire"},
			{Mover: N, Desc: "commit"},
			{Mover: L, Desc: "release"},
		},
	}
	if res := Reducible(p); !res.OK {
		t.Fatalf("pure block should collapse: %s", res.Reason)
	}
	// The same labels NOT marked pure are irreducible (N then R).
	p2 := p
	p2.Actions = append([]Action(nil), p.Actions...)
	p2.Actions[0].Pure = false
	if res := Reducible(p2); res.OK {
		t.Fatal("unmarked unlocked read before acquire must be rejected")
	}
	// And a fast path that returns inside the pure block keeps the label
	// but is fine as a lone N.
	p3 := Path{
		Handler: "write", Name: "fast path",
		ReturnsInPure: true,
		Actions: []Action{
			{Mover: B, Desc: "read epoch"},
			{Mover: N, Pure: true, Desc: "pure read, return"},
		},
	}
	if res := Reducible(p3); !res.OK {
		t.Fatalf("fast path: %s", res.Reason)
	}
}

// The headline check: every path of every VerifiedFT-v2 handler reduces.
// This is the serializability half of the §6 theorem, over the §5
// discipline encoded in the Classify functions.
func TestV2HandlersAreSerializable(t *testing.T) {
	paths := V2Paths()
	if len(paths) < 12 {
		t.Fatalf("only %d paths modeled", len(paths))
	}
	for _, bad := range CheckAll(paths) {
		t.Errorf("irreducible: %v — %s", bad.Path, bad.Reason)
	}
}

func TestV1HandlersAreSerializable(t *testing.T) {
	for _, bad := range CheckAll(V1Paths()) {
		t.Errorf("irreducible: %v — %s", bad.Path, bad.Reason)
	}
}

// The checker must have teeth: the naive designs are rejected.
func TestBrokenDesignsAreRejected(t *testing.T) {
	broken := BrokenPaths()
	bad := CheckAll(broken)
	if len(bad) != len(broken) {
		t.Fatalf("rejected %d of %d broken paths", len(bad), len(broken))
	}
	if !strings.Contains(bad[0].Reason, "right-mover after the commit point") {
		t.Errorf("unexpected reason: %s", bad[0].Reason)
	}
}

// The discipline encoding itself must reject accesses the discipline
// forbids.
func TestDisciplineViolationsPanic(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"unlocked write to W", func() { ClassifyW(true, false) }},
		{"unlocked write to R", func() { ClassifyR(true, false, false) }},
		{"unlocked V access while unshared", func() { ClassifyVPointer(false, false, false) }},
		{"unlocked V write", func() { ClassifyVPointer(true, false, true) }},
		{"foreign entry write", func() { ClassifyVEntry(true, true, true, false) }},
		{"unlocked foreign entry read", func() { ClassifyVEntry(false, false, true, false) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			tc.f()
		})
	}
}

// Model checking: every interleaving of every scenario — pairs and triples
// of concurrent handler invocations — is serializable. This is the §6
// theorem's other half, on bounded state.
func TestModelCheckSerializability(t *testing.T) {
	total := 0
	threeThread := 0
	for _, sc := range Scenarios() {
		n, err := CheckSerializability(sc)
		if err != nil {
			t.Fatal(err)
		}
		total += n
		if len(sc.Progs) == 3 {
			threeThread++
		}
	}
	if total < 5000 {
		t.Fatalf("only %d states explored; model too small to mean anything", total)
	}
	if threeThread < 20 {
		t.Fatalf("only %d three-thread scenarios", threeThread)
	}
	t.Logf("explored %d distinct states across %d scenarios (%d three-thread)",
		total, len(Scenarios()), threeThread)
}

// Functional correctness: both serial orders of every scenario agree with
// the Fig. 2 specification on rules and resulting VarState.
func TestModelCheckFunctionalCorrectness(t *testing.T) {
	for _, sc := range Scenarios() {
		if err := CheckFunctionalCorrectness(sc); err != nil {
			t.Fatal(err)
		}
	}
}

func TestScenarioCoverage(t *testing.T) {
	// The scenario sweep must exercise every read and write rule at least
	// once (outcome coverage of the Fig. 2 case space).
	seen := map[string]bool{}
	for _, sc := range Scenarios() {
		m := buildMachine(sc)
		for _, order := range permutations(len(sc.Progs)) {
			final := runSerial(m, order)
			for i := range sc.Progs {
				seen[final.th[i].outcome.String()] = true
			}
		}
	}
	for _, want := range []string{
		"Read Same Epoch", "Read Shared Same Epoch", "Read Exclusive",
		"Read Share", "Read Shared", "Write Same Epoch", "Write Exclusive",
		"Write Shared", "Write-Read Race", "Write-Write Race",
		"Read-Write Race", "Shared-Write Race",
	} {
		if !seen[want] {
			t.Errorf("scenario sweep never produced outcome %q (saw %v)", want, seen)
		}
	}
}
