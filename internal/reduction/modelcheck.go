package reduction

import (
	"fmt"

	"repro/internal/epoch"
	"repro/internal/spec"
	"repro/internal/trace"
	"repro/internal/vc"
)

// This file model-checks the VerifiedFT-v2 read and write handlers: each
// handler is compiled into micro-steps of exactly one shared-memory or lock
// action (the granularity at which the concurrent hardware interleaves
// them), and an exhaustive search runs every interleaving of two or three
// handler invocations over a small shadow state. Serializability requires
// every interleaved outcome — final VarState plus every handler's rule
// outcome — to equal the outcome of one of the serial orders; functional
// correctness requires the serial semantics to agree with the Fig. 2
// specification. These are the two theorems the paper discharges with CIVL
// (§6), checked here on bounded state.
//
// The search deduplicates on full machine states (the machine is a plain
// comparable value), so the three-thread configurations stay tractable:
// the state graph is explored once per state rather than once per path.

// maxModelThreads bounds the model; scenarios use 2 or 3.
const maxModelThreads = 3

// progKind selects the handler a model thread runs.
type progKind uint8

const (
	// ProgRead runs the v2 read handler.
	ProgRead progKind = iota
	// ProgWrite runs the v2 write handler.
	ProgWrite
)

func (p progKind) String() string {
	if p == ProgRead {
		return "read"
	}
	return "write"
}

// mcVar is the modeled VarState: epochs, a fixed-size read vector, and the
// lock. Vector resizing is not modeled (the pattern checker covers the
// pointer discipline); maxModelThreads entries suffice.
type mcVar struct {
	r, w   epoch.Epoch
	vec    [maxModelThreads]epoch.Epoch
	lockBy int8 // -1 free
}

// mcThread is one handler invocation in flight.
type mcThread struct {
	prog    progKind
	tid     epoch.Tid
	vcs     [maxModelThreads]epoch.Epoch // the thread's clock (fixed during a handler)
	e       epoch.Epoch                  // cached current epoch
	pc      int8
	done    bool
	outcome spec.Rule

	// registers
	r0, r1, w0 epoch.Epoch
	v0         epoch.Epoch
	vecIdx     int8 // [Write Shared] comparison cursor
	vecBad     bool // [Write Shared] found an unordered entry
}

// leq is the e ⪯ V comparison against the thread's fixed clock.
func (t *mcThread) leq(e epoch.Epoch) bool {
	return e <= t.vcs[e.Tid()]
}

// machine is a complete model state. It is a comparable value: exploration
// deduplicates on it directly.
type machine struct {
	n  int8 // active threads
	v  mcVar
	th [maxModelThreads]mcThread
}

// signature canonically identifies a terminal outcome.
func (m *machine) signature() string {
	s := fmt.Sprintf("r=%v w=%v vec=%v", m.v.r, m.v.w, m.v.vec)
	for i := int8(0); i < m.n; i++ {
		s += fmt.Sprintf(" out%d=%v", i, m.th[i].outcome)
	}
	return s
}

// step advances thread i by one atomic action. It returns false if the
// thread is blocked on the variable lock.
func (m *machine) step(i int) bool {
	th := &m.th[i]
	v := &m.v
	t := th.tid
	finish := func(r spec.Rule) {
		if th.outcome == spec.RuleNone {
			th.outcome = r
		}
		th.done = true
	}
	setOutcome := func(r spec.Rule) {
		if th.outcome == spec.RuleNone {
			th.outcome = r
		}
	}

	if th.prog == ProgRead {
		switch th.pc {
		case 0: // pure: load sx.R (unlocked)
			th.r0 = v.r
			switch {
			case th.r0 == th.e:
				finish(spec.ReadSameEpoch)
			case th.r0.IsShared():
				th.pc = 1
			default:
				th.pc = 2
			}
		case 1: // pure: load own vector entry (unlocked, after Shared)
			th.v0 = v.vec[t]
			if th.v0 == th.e {
				finish(spec.ReadSharedSameEpoch)
			} else {
				th.pc = 2
			}
		case 2: // acquire sx
			if v.lockBy != -1 {
				return false
			}
			v.lockBy = int8(i)
			th.pc = 3
		case 3: // re-load sx.R under the lock
			th.r1 = v.r
			if th.r1 == th.e {
				th.pc = 10 // release, same epoch
			} else if th.r1.IsShared() {
				th.pc = 4
			} else {
				th.pc = 5
			}
		case 4: // locked read of own entry (shared re-check)
			th.v0 = v.vec[t]
			if th.v0 == th.e {
				th.pc = 11 // release, shared same epoch
			} else {
				th.pc = 5
			}
		case 5: // load sx.W (write-read race check)
			th.w0 = v.w
			if !th.leq(th.w0) {
				setOutcome(spec.WriteReadRace)
			}
			if th.r1.IsShared() {
				th.pc = 8
			} else if th.leq(th.r1) {
				th.pc = 6 // read exclusive
			} else {
				th.pc = 7 // read share
			}
		case 6: // [Read Exclusive]: write sx.R := e
			v.r = th.e
			setOutcome(spec.ReadExclusive)
			th.pc = 12
		case 7: // [Read Share] step 1: vec[tid(R)] := R
			v.vec[th.r1.Tid()] = th.r1
			th.pc = 71
		case 71: // [Read Share] step 2: vec[t] := e
			v.vec[t] = th.e
			th.pc = 72
		case 72: // [Read Share] step 3: publish Shared
			v.r = epoch.Shared
			setOutcome(spec.ReadShare)
			th.pc = 12
		case 8: // [Read Shared]: vec[t] := e
			v.vec[t] = th.e
			setOutcome(spec.ReadShared)
			th.pc = 12
		case 10: // release (same epoch under lock)
			v.lockBy = -1
			finish(spec.ReadSameEpoch)
		case 11: // release (shared same epoch under lock)
			v.lockBy = -1
			finish(spec.ReadSharedSameEpoch)
		case 12: // release
			v.lockBy = -1
			finish(th.outcome)
		}
		return true
	}

	// ProgWrite
	switch th.pc {
	case 0: // pure: load sx.W (unlocked)
		th.w0 = v.w
		if th.w0 == th.e {
			finish(spec.WriteSameEpoch)
		} else {
			th.pc = 1
		}
	case 1: // acquire sx
		if v.lockBy != -1 {
			return false
		}
		v.lockBy = int8(i)
		th.pc = 2
	case 2: // re-load sx.W under the lock
		th.w0 = v.w
		if th.w0 == th.e {
			th.pc = 10
			return true
		}
		if !th.leq(th.w0) {
			setOutcome(spec.WriteWriteRace)
		}
		th.pc = 3
	case 3: // load sx.R
		th.r1 = v.r
		if th.r1.IsShared() {
			th.vecIdx, th.vecBad = 0, false
			th.pc = 4
		} else {
			if !th.leq(th.r1) {
				setOutcome(spec.ReadWriteRace)
			} else {
				setOutcome(spec.WriteExclusive)
			}
			th.pc = 6
		}
	case 4: // locked read of vec[vecIdx] — one entry per step
		if !th.leq(v.vec[th.vecIdx]) {
			th.vecBad = true
		}
		th.vecIdx++
		if int(th.vecIdx) == int(m.n) {
			if th.vecBad {
				setOutcome(spec.SharedWriteRace)
			} else {
				setOutcome(spec.WriteShared)
			}
			th.pc = 6
		}
	case 6: // write sx.W := e
		v.w = th.e
		th.pc = 7
	case 7: // release
		v.lockBy = -1
		finish(th.outcome)
	case 10: // release (same epoch under lock)
		v.lockBy = -1
		finish(spec.WriteSameEpoch)
	}
	return true
}

// runSerial executes the threads to completion in the given total order and
// returns the terminal machine.
func runSerial(m machine, order []int) *machine {
	for _, i := range order {
		for !m.th[i].done {
			if !m.step(i) {
				panic("reduction: serial execution blocked (lock leak)")
			}
		}
	}
	return &m
}

// permutations enumerates the serial orders of n threads.
func permutations(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	var out [][]int
	var rec func(prefix []int, rest []int)
	rec = func(prefix, rest []int) {
		if len(rest) == 0 {
			out = append(out, append([]int(nil), prefix...))
			return
		}
		for i := range rest {
			nr := make([]int, 0, len(rest)-1)
			nr = append(nr, rest[:i]...)
			nr = append(nr, rest[i+1:]...)
			rec(append(prefix, rest[i]), nr)
		}
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	rec(nil, all)
	return out
}

// explore walks the state graph from m with full-state deduplication,
// recording terminal signatures; it returns the number of distinct states
// visited.
func explore(m machine, out map[string]machine) int {
	visited := map[machine]bool{}
	var dfs func(machine)
	dfs = func(s machine) {
		if visited[s] {
			return
		}
		visited[s] = true
		allDone := true
		progressed := false
		for i := 0; i < int(s.n); i++ {
			if s.th[i].done {
				continue
			}
			allDone = false
			next := s // value copy
			if next.step(i) {
				progressed = true
				dfs(next)
			}
		}
		if allDone {
			out[s.signature()] = s
			return
		}
		if !progressed {
			panic("reduction: deadlock in model (all live threads blocked)")
		}
	}
	dfs(m)
	return len(visited)
}

// Scenario is one model-checking configuration.
type Scenario struct {
	Name  string
	Var   mcVar
	Progs []progKind
	// Clocks[i] is thread i's vector clock.
	Clocks [][maxModelThreads]epoch.Epoch
}

// CheckSerializability explores every interleaving of the scenario and
// verifies each terminal outcome equals one of the serial-order outcomes.
// It returns the number of distinct machine states explored.
func CheckSerializability(sc Scenario) (int, error) {
	m := buildMachine(sc)
	serial := map[string]bool{}
	for _, order := range permutations(int(m.n)) {
		serial[runSerial(m, order).signature()] = true
	}
	outcomes := map[string]machine{}
	n := explore(m, outcomes)
	for sig := range outcomes {
		if !serial[sig] {
			return n, fmt.Errorf("non-serializable outcome in %q:\n  got %s\n  serial: %v",
				sc.Name, sig, keys(serial))
		}
	}
	return n, nil
}

func buildMachine(sc Scenario) machine {
	if len(sc.Progs) != len(sc.Clocks) || len(sc.Progs) < 2 || len(sc.Progs) > maxModelThreads {
		panic(fmt.Sprintf("reduction: scenario %q has %d progs / %d clocks", sc.Name, len(sc.Progs), len(sc.Clocks)))
	}
	m := machine{n: int8(len(sc.Progs)), v: sc.Var}
	m.v.lockBy = -1
	for i := range sc.Progs {
		tid := epoch.Tid(i)
		m.th[i] = mcThread{
			prog: sc.Progs[i],
			tid:  tid,
			vcs:  sc.Clocks[i],
			e:    sc.Clocks[i][i],
		}
	}
	// Inactive slots stay zero; step never touches them.
	return m
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// CheckFunctionalCorrectness runs each serial order of the scenario and
// compares the handlers' rule outcomes and the final VarState against the
// Fig. 2 specification. Comparison stops at the first racy operation (the
// specification's analysis halts there; the implementation repairs and
// continues, §7).
func CheckFunctionalCorrectness(sc Scenario) error {
	base := buildMachine(sc)
	for _, order := range permutations(int(base.n)) {
		final := runSerial(base, order)

		st := spec.NewState(spec.VerifiedFT)
		installSpecState(st, sc)
		raced := false
		for _, i := range order {
			if raced {
				break
			}
			op := trace.Rd(epoch.Tid(i), 0)
			if sc.Progs[i] == ProgWrite {
				op = trace.Wr(epoch.Tid(i), 0)
			}
			rule, err := st.Step(op)
			got := final.th[i].outcome
			if rule != got {
				return fmt.Errorf("%s (order %v): thread %d rule: impl %v, spec %v",
					sc.Name, order, i, got, rule)
			}
			if err != nil {
				raced = true
			}
		}
		if !raced {
			// Compare final VarState component-wise.
			sx := st.Var(0)
			if sx.W != final.v.w {
				return fmt.Errorf("%s (order %v): W: impl %v, spec %v", sc.Name, order, final.v.w, sx.W)
			}
			if sx.R != final.v.r {
				return fmt.Errorf("%s (order %v): R: impl %v, spec %v", sc.Name, order, final.v.r, sx.R)
			}
			if final.v.r.IsShared() {
				for t := epoch.Tid(0); int(t) < int(base.n); t++ {
					if sx.V.Get(t) != final.v.vec[t] {
						return fmt.Errorf("%s (order %v): V[%d]: impl %v, spec %v",
							sc.Name, order, t, final.v.vec[t], sx.V.Get(t))
					}
				}
			}
		}
	}
	return nil
}

// installSpecState mirrors the scenario's initial machine state into a
// specification state.
func installSpecState(st *spec.State, sc Scenario) {
	for i := range sc.Progs {
		tv := st.Thread(epoch.Tid(i))
		for t := epoch.Tid(0); int(t) < maxModelThreads; t++ {
			if sc.Clocks[i][t] != 0 {
				tv.Set(t, sc.Clocks[i][t])
			}
		}
	}
	sx := st.Var(0)
	sx.W = sc.Var.w
	sx.R = sc.Var.r
	if sc.Var.r.IsShared() {
		v := vc.New()
		for t := epoch.Tid(0); t < maxModelThreads; t++ {
			if sc.Var.vec[t] != 0 {
				v.Set(t, sc.Var.vec[t])
			}
		}
		sx.V = v
	}
}

// Scenarios enumerates the model-checking configurations: every program
// pair over a set of initial shadow states covering the analysis's case
// space (fresh variable, same-epoch hits, exclusive reads by either
// thread, shared vectors ordered and unordered, racy last writes), plus
// three-thread configurations where the extra concurrency could expose
// non-serializable interleavings a pair cannot (e.g. a reader on the
// shared fast path racing a Share transition racing a writer).
func Scenarios() []Scenario {
	e := func(t epoch.Tid, c uint64) epoch.Epoch { return epoch.Make(t, c) }
	// Two concurrent threads: 0 at <5,3>, 1 at <2,7> (each knows a stale
	// portion of the other), plus an ordered pair where 1 has absorbed 0.
	concurrent := [][maxModelThreads]epoch.Epoch{
		{e(0, 5), e(1, 3), e(2, 0)},
		{e(0, 2), e(1, 7), e(2, 0)},
	}
	ordered := [][maxModelThreads]epoch.Epoch{
		{e(0, 5), e(1, 3), e(2, 0)},
		{e(0, 5), e(1, 7), e(2, 0)},
	}

	vars := []struct {
		name string
		v    mcVar
	}{
		{"fresh", mcVar{r: e(0, 0), w: e(0, 0)}},
		{"read-by-0-current", mcVar{r: e(0, 5), w: e(0, 0)}},
		{"read-by-0-old", mcVar{r: e(0, 2), w: e(0, 2)}},
		{"read-by-1-stale", mcVar{r: e(1, 5), w: e(0, 0)}},
		{"written-by-0-current", mcVar{r: e(0, 0), w: e(0, 5)}},
		{"written-by-1-racy", mcVar{r: e(0, 0), w: e(1, 5)}},
		{"shared-ordered", mcVar{r: epoch.Shared, w: e(0, 1), vec: [maxModelThreads]epoch.Epoch{e(0, 2), e(1, 3), e(2, 0)}}},
		{"shared-own-current", mcVar{r: epoch.Shared, w: e(0, 1), vec: [maxModelThreads]epoch.Epoch{e(0, 5), e(1, 7), e(2, 0)}}},
		{"shared-unordered", mcVar{r: epoch.Shared, w: e(0, 1), vec: [maxModelThreads]epoch.Epoch{e(0, 4), e(1, 6), e(2, 0)}}},
	}
	pairs := [][]progKind{
		{ProgRead, ProgRead},
		{ProgRead, ProgWrite},
		{ProgWrite, ProgRead},
		{ProgWrite, ProgWrite},
	}

	var out []Scenario
	for _, v := range vars {
		for _, p := range pairs {
			for ci, clocks := range [][][maxModelThreads]epoch.Epoch{concurrent, ordered} {
				out = append(out, Scenario{
					Name:   fmt.Sprintf("%s/%v-%v/clocks%d", v.name, p[0], p[1], ci),
					Var:    v.v,
					Progs:  p,
					Clocks: clocks,
				})
			}
		}
	}

	// Three-thread configurations: three pairwise-concurrent clocks over
	// the full case space of handler triples.
	threeClocks := [][maxModelThreads]epoch.Epoch{
		{e(0, 5), e(1, 3), e(2, 2)},
		{e(0, 2), e(1, 7), e(2, 2)},
		{e(0, 2), e(1, 3), e(2, 9)},
	}
	triples := [][]progKind{
		{ProgRead, ProgRead, ProgRead},
		{ProgRead, ProgRead, ProgWrite},
		{ProgRead, ProgWrite, ProgRead},
		{ProgWrite, ProgRead, ProgRead},
		{ProgRead, ProgWrite, ProgWrite},
		{ProgWrite, ProgWrite, ProgWrite},
	}
	threeVars := []struct {
		name string
		v    mcVar
	}{
		{"fresh3", mcVar{r: e(0, 0), w: e(0, 0)}},
		{"excl-read-3", mcVar{r: e(2, 1), w: e(2, 1)}},
		{"shared3", mcVar{r: epoch.Shared, w: e(0, 1), vec: [maxModelThreads]epoch.Epoch{e(0, 2), e(1, 3), e(2, 2)}}},
		{"shared3-own", mcVar{r: epoch.Shared, w: e(0, 1), vec: [maxModelThreads]epoch.Epoch{e(0, 5), e(1, 7), e(2, 9)}}},
	}
	for _, v := range threeVars {
		for _, p := range triples {
			out = append(out, Scenario{
				Name:   fmt.Sprintf("%s/%v-%v-%v", v.name, p[0], p[1], p[2]),
				Var:    v.v,
				Progs:  p,
				Clocks: threeClocks,
			})
		}
	}
	return out
}
