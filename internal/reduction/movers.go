// Package reduction is the executable stand-in for the paper's CIVL
// verification (§6). CIVL proves two theorems about the VerifiedFT-v2 event
// handlers:
//
//  1. serializability — every handler reduces to an atomic action under
//     Lipton's theory (§4-5): each execution path's sequence of mover
//     labels matches (B|R)*[N](B|L)*, with pure blocks treated as both-
//     movers; and
//  2. functional correctness — the handler's atomic effect is exactly one
//     of the Fig. 2 analysis rules.
//
// Re-implementing a Boogie-based deductive verifier is out of scope;
// instead this package checks the same two theorems executably:
//
//   - movers.go/pattern.go: the handlers are modeled as straight-line path
//     programs over labeled primitive actions whose mover classification is
//     *derived from the synchronization discipline* (e.g. "read of sx.W
//     while holding sx" ⇒ both-mover, "unlocked read of sx.W" ⇒ non-mover),
//     and every path is checked against the reduction pattern;
//   - modelcheck.go: an exhaustive interleaving model checker runs pairs of
//     handler invocations as atomic micro-steps over a small shadow state
//     and verifies that every interleaving's final state and return values
//     equal those of some serial order (serializability), and that the
//     serial semantics matches the Fig. 2 specification.
package reduction

import "fmt"

// Mover is Lipton's commuting classification of a primitive action (§4).
type Mover uint8

const (
	// B commutes both ways against concurrent threads' actions.
	B Mover = iota
	// R right-commutes (e.g. lock acquire).
	R
	// L left-commutes (e.g. lock release).
	L
	// N is a single non-mover atomic action.
	N
)

func (m Mover) String() string {
	return [...]string{"B", "R", "L", "N"}[m]
}

// Action is one labeled primitive step of a handler path.
type Action struct {
	Mover Mover
	// Pure marks actions inside a pure block (§5): a normally-terminating
	// pure block does not change state, so for reduction it collapses to
	// a both-mover; a pure block through which the handler *returns*
	// keeps its labels and must reduce on its own.
	Pure bool
	// Desc names the step for diagnostics, e.g. "read sx.W (locked)".
	Desc string
}

// Path is one execution path through a handler: an ordered list of labeled
// actions plus whether the path returns from inside the pure block.
type Path struct {
	Handler string
	Name    string // e.g. "read: [Read Same Epoch] fast path"
	// ReturnsInPure marks fast paths that exit inside the pure block.
	ReturnsInPure bool
	Actions       []Action
}

// String renders the path's mover string, e.g. "BBRN(B)L".
func (p Path) String() string {
	s := ""
	for _, a := range p.Actions {
		if a.Pure {
			s += "(" + a.Mover.String() + ")"
		} else {
			s += a.Mover.String()
		}
	}
	return fmt.Sprintf("%s/%s: %s", p.Handler, p.Name, s)
}

// The synchronization discipline of §5, encoded as classification
// functions. Each returns the mover label for an access to the named
// location under the given lock/phase context, exactly following the
// discipline's case analysis.

// ClassifyW classifies an access to sx.W (write-protected by sx).
func ClassifyW(write, locked bool) Mover {
	switch {
	case write && locked:
		// Lock-protected writes are non-movers: unprotected concurrent
		// reads exist.
		return N
	case write && !locked:
		panic("reduction: the discipline forbids unlocked writes to sx.W")
	case locked:
		// Lock-protected reads are both-movers: the lock excludes writers.
		return B
	default:
		// Unprotected reads are non-movers.
		return N
	}
}

// ClassifyR classifies an access to sx.R (write-protected by sx; immutable
// once Shared). readShared reports whether the value read is Shared.
func ClassifyR(write, locked, readShared bool) Mover {
	switch {
	case write && locked:
		return N
	case write && !locked:
		panic("reduction: the discipline forbids unlocked writes to sx.R")
	case locked:
		return B
	case readShared:
		// Reading Shared (even unlocked) right-commutes: R is immutable
		// once Shared, so no later write can invalidate the read.
		return R
	default:
		return N
	}
}

// ClassifyVPointer classifies an access to sx.V itself — the array
// reference, replaced on resize (§5's sx.V case). Protected by sx while
// unshared; write-protected by sx once Shared: "unprotected reads are
// non-movers (N), protected reads are both-movers (B), and protected writes
// are non-movers (N)".
func ClassifyVPointer(write, locked, shared bool) Mover {
	switch {
	case !shared:
		if !locked {
			panic("reduction: unlocked sx.V access while unshared")
		}
		return B
	case write:
		if !locked {
			panic("reduction: unlocked write to sx.V")
		}
		return N
	case locked:
		return B
	default:
		return N
	}
}

// ClassifyVEntry classifies an access to one element sx.V[t] (§5's sx.V[t]
// case): readable by any lock holder or by thread t without the lock once
// Shared; writable only by thread t holding the lock. "Under this
// discipline, all accesses are race free and thus both-movers (B)."
func ClassifyVEntry(write, locked, shared, ownEntry bool) Mover {
	switch {
	case !shared:
		if !locked {
			panic("reduction: unlocked sx.V[t] access while unshared")
		}
		return B
	case write:
		if !locked || !ownEntry {
			panic("reduction: sx.V[t] writable only by t under the lock")
		}
		return B
	case locked || ownEntry:
		return B
	default:
		panic("reduction: unlocked read of another thread's sx.V entry")
	}
}

// ClassifyThreadState classifies accesses to st.t / st.V: thread-local per
// the §4 phase discipline, hence both-movers.
func ClassifyThreadState() Mover { return B }

// ClassifyLock returns the mover for lock operations.
func ClassifyLock(acquire bool) Mover {
	if acquire {
		return R
	}
	return L
}
