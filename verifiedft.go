// Package verifiedft is a Go implementation of VerifiedFT (Wilcox,
// Flanagan, Freund — PPoPP 2018): a precise dynamic data-race detector in
// the FastTrack family whose core algorithm is simple enough to verify,
// with lock-free fast paths for the three most common analysis cases.
//
// The package offers two levels of API.
//
// # Trace checking
//
// Build or parse a trace in the §2 trace language and check it:
//
//	tr := verifiedft.Trace{
//		verifiedft.Fork(0, 1),
//		verifiedft.Write(0, 0),
//		verifiedft.Write(1, 0),
//	}
//	reports, err := verifiedft.CheckTrace(tr)
//
// CheckTrace validates feasibility, lowers extended operations (volatiles,
// barriers), replays the trace through a VerifiedFT-v2 detector and returns
// one report per detected race. The analysis is precise: it reports at
// least one race if and only if the trace has two concurrent conflicting
// accesses (Theorem 3.1).
//
// # Online checking
//
// Attach a detector to a running concurrent program through the Runtime,
// which mirrors the RoadRunner execution model (§7): every instrumented
// operation invokes the analysis inline in the acting goroutine.
//
//	d, _ := verifiedft.New(verifiedft.V2, verifiedft.DefaultConfig())
//	rt := verifiedft.NewRuntime(d)
//	main := rt.Main()
//	x := rt.NewVar()
//	child := main.Go(func(w *verifiedft.Thread) { x.Store(w, 1) })
//	x.Store(main, 2) // races with the child's store
//	main.Join(child)
//	races := rt.Reports()
//
// Seven detector variants share the Detector interface: the three
// VerifiedFT stages the paper evaluates (V1, V15, V2), the two prior
// FastTrack implementations it compares against (FTMutex, FTCAS), and two
// classical baselines (DJIT, Eraser). V2 is the paper's contribution and
// the right default.
package verifiedft

import (
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/hb"
	"repro/internal/rtsim"
	"repro/internal/spec"
	"repro/internal/trace"
)

// Detector variant names accepted by New.
const (
	// V1 is VerifiedFT-v1: every handler fully lock-protected (Fig. 3).
	V1 = "vft-v1"
	// V15 is VerifiedFT-v1.5: lock-free same-epoch cases only.
	V15 = "vft-v1.5"
	// V2 is VerifiedFT-v2, the paper's algorithm (Fig. 4): lock-free
	// [Read Same Epoch], [Write Same Epoch] and [Read Shared Same Epoch].
	V2 = "vft-v2"
	// FTMutex is the prior write-protected/optimistic-retry FastTrack.
	FTMutex = "ft-mutex"
	// FTCAS is the prior CAS-packed FastTrack.
	FTCAS = "ft-cas"
	// DJIT is a pure vector-clock detector (no epochs).
	DJIT = "djit"
	// Eraser is the classical lockset detector (imprecise).
	Eraser = "eraser"
)

// Detector is the six-handler event interface of the idealized
// implementations; see the core package for the handler contracts.
type Detector = core.Detector

// Report describes one detected race.
type Report = core.Report

// Config sizes a detector's shadow tables (hints; tables grow on demand).
type Config = core.Config

// Rule identifies a Fig. 2 analysis rule.
type Rule = spec.Rule

// Tid, Var and Lock are the identity types of the trace language.
type (
	// Tid is a thread identifier.
	Tid = epoch.Tid
	// VarID is a variable identifier.
	VarID = trace.Var
	// LockID is a lock identifier.
	LockID = trace.Lock
)

// Op is one operation of the trace language; Trace is a sequence of them.
type (
	// Op is a single trace operation.
	Op = trace.Op
	// Trace is an execution trace.
	Trace = trace.Trace
)

// Trace-operation constructors (§2 syntax).
var (
	// Read builds rd(t,x).
	Read = trace.Rd
	// Write builds wr(t,x).
	Write = trace.Wr
	// Acquire builds acq(t,m).
	Acquire = trace.Acq
	// Release builds rel(t,m).
	Release = trace.Rel
	// Fork builds fork(t,u).
	Fork = trace.ForkOp
	// Join builds join(t,u).
	Join = trace.JoinOp
	// VolatileRead builds vrd(t,x).
	VolatileRead = trace.VRd
	// VolatileWrite builds vwr(t,x).
	VolatileWrite = trace.VWr
	// BarrierArrive builds barrier(t,b).
	BarrierArrive = trace.BarrierOp
)

// Runtime couples a concurrent Go program with a detector (the RoadRunner
// model, §7); Thread, Var, Array, Mutex, Volatile and Barrier are its
// instrumented primitives.
type (
	// Runtime is an instrumented execution environment.
	Runtime = rtsim.Runtime
	// Thread is an instrumented thread identity.
	Thread = rtsim.Thread
	// Var is an instrumented memory location.
	Var = rtsim.Var
	// Array is a block of instrumented memory locations.
	Array = rtsim.Array
	// Mutex is an instrumented lock.
	Mutex = rtsim.Mutex
	// Volatile is an instrumented volatile location.
	Volatile = rtsim.Volatile
	// Barrier is an instrumented cyclic barrier.
	Barrier = rtsim.Barrier
)

// New constructs a detector variant; see the variant constants. The zero
// Config is usable; DefaultConfig sizes tables for mid-sized programs.
func New(variant string, cfg Config) (Detector, error) {
	return core.New(variant, cfg)
}

// DefaultConfig returns reasonable shadow-table size hints.
func DefaultConfig() Config { return core.DefaultConfig() }

// Variants lists all detector variant names.
func Variants() []string { return core.Variants() }

// NewRuntime returns an instrumented runtime delivering events to d; a nil
// detector gives an uninstrumented baseline runtime.
func NewRuntime(d Detector) *Runtime { return rtsim.New(d) }

// ValidateTrace checks the §2 feasibility constraints.
func ValidateTrace(tr Trace) error { return trace.Validate(tr) }

// CheckTrace validates tr, lowers extended operations, and replays it
// through a fresh VerifiedFT-v2 detector, returning every detected race.
// parties gives the participant count per barrier id for barrier lowering
// (nil if the trace uses no barriers; absent entries default to 2).
func CheckTrace(tr Trace, parties ...map[LockID]int) ([]Report, error) {
	if err := trace.Validate(tr); err != nil {
		return nil, err
	}
	var p map[LockID]int
	if len(parties) > 0 {
		p = parties[0]
	}
	low := tr.Desugar(p)
	d, err := core.New(V2, configFor(low))
	if err != nil {
		return nil, err
	}
	return core.Replay(d, low), nil
}

// CheckTraceWith is CheckTrace with an explicit detector variant.
func CheckTraceWith(variant string, tr Trace) ([]Report, error) {
	if err := trace.Validate(tr); err != nil {
		return nil, err
	}
	low := tr.Desugar(nil)
	d, err := core.New(variant, configFor(low))
	if err != nil {
		return nil, err
	}
	return core.Replay(d, low), nil
}

// HasRace is the oracle of §2: it decides, directly from the happens-before
// relation, whether the trace contains two concurrent conflicting accesses.
// It is independent of the detector implementation and exists for
// ground-truth comparison.
func HasRace(tr Trace) (bool, error) {
	if err := trace.Validate(tr); err != nil {
		return false, err
	}
	return hb.Analyze(tr.Desugar(nil)).HasRace(), nil
}

// configFor sizes shadow tables from a trace's contents.
func configFor(tr Trace) Config {
	cfg := Config{Threads: 8, Vars: 64, Locks: 16}
	for _, op := range tr {
		if int(op.T)+1 > cfg.Threads {
			cfg.Threads = int(op.T) + 1
		}
		if op.IsAccess() && int(op.X)+1 > cfg.Vars {
			cfg.Vars = int(op.X) + 1
		}
	}
	return cfg
}

// Version identifies this implementation.
const Version = "1.0.0"
