// Package verifiedft is a Go implementation of VerifiedFT (Wilcox,
// Flanagan, Freund — PPoPP 2018): a precise dynamic data-race detector in
// the FastTrack family whose core algorithm is simple enough to verify,
// with lock-free fast paths for the three most common analysis cases.
//
// The package offers two levels of API.
//
// # Trace checking
//
// Build or parse a trace in the §2 trace language and check it:
//
//	tr := verifiedft.Trace{
//		verifiedft.Fork(0, 1),
//		verifiedft.Write(0, 0),
//		verifiedft.Write(1, 0),
//	}
//	reports, err := verifiedft.CheckTrace(tr)
//
// CheckTrace validates feasibility, lowers extended operations (volatiles,
// barriers), replays the trace through a VerifiedFT-v2 detector and returns
// one report per detected race. The analysis is precise: it reports at
// least one race if and only if the trace has two concurrent conflicting
// accesses (Theorem 3.1).
//
// # Online checking
//
// Attach a detector to a running concurrent program through the Runtime,
// which mirrors the RoadRunner execution model (§7): every instrumented
// operation invokes the analysis inline in the acting goroutine.
//
//	d, _ := verifiedft.New(verifiedft.V2)
//	rt := verifiedft.NewRuntime(d)
//	main := rt.Main()
//	x := rt.NewVar()
//	child := main.Go(func(w *verifiedft.Thread) { x.Store(w, 1) })
//	x.Store(main, 2) // races with the child's store
//	main.Join(child)
//	races := rt.Reports()
//
// Seven detector variants share the Detector interface: the three
// VerifiedFT stages the paper evaluates (V1, V15, V2), the two prior
// FastTrack implementations it compares against (FTMutex, FTCAS), and two
// classical baselines (DJIT, Eraser). V2 is the paper's contribution and
// the right default.
package verifiedft

import (
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/hb"
	"repro/internal/rtsim"
	"repro/internal/spec"
	"repro/internal/trace"
)

// Detector variant names accepted by New.
const (
	// V1 is VerifiedFT-v1: every handler fully lock-protected (Fig. 3).
	V1 = "vft-v1"
	// V15 is VerifiedFT-v1.5: lock-free same-epoch cases only.
	V15 = "vft-v1.5"
	// V2 is VerifiedFT-v2, the paper's algorithm (Fig. 4): lock-free
	// [Read Same Epoch], [Write Same Epoch] and [Read Shared Same Epoch].
	V2 = "vft-v2"
	// FTMutex is the prior write-protected/optimistic-retry FastTrack.
	FTMutex = "ft-mutex"
	// FTCAS is the prior CAS-packed FastTrack.
	FTCAS = "ft-cas"
	// DJIT is a pure vector-clock detector (no epochs).
	DJIT = "djit"
	// Eraser is the classical lockset detector (imprecise).
	Eraser = "eraser"
)

// Detector is the six-handler event interface of the idealized
// implementations; see the core package for the handler contracts.
type Detector = core.Detector

// Report describes one detected race.
type Report = core.Report

// Config sizes a detector's shadow tables (hints; tables grow on demand).
type Config = core.Config

// Rule identifies a Fig. 2 analysis rule.
type Rule = spec.Rule

// Tid, Var and Lock are the identity types of the trace language.
type (
	// Tid is a thread identifier.
	Tid = epoch.Tid
	// VarID is a variable identifier.
	VarID = trace.Var
	// LockID is a lock identifier.
	LockID = trace.Lock
)

// Op is one operation of the trace language; Trace is a sequence of them.
type (
	// Op is a single trace operation.
	Op = trace.Op
	// Trace is an execution trace.
	Trace = trace.Trace
)

// Trace-operation constructors (§2 syntax).
var (
	// Read builds rd(t,x).
	Read = trace.Rd
	// Write builds wr(t,x).
	Write = trace.Wr
	// Acquire builds acq(t,m).
	Acquire = trace.Acq
	// Release builds rel(t,m).
	Release = trace.Rel
	// Fork builds fork(t,u).
	Fork = trace.ForkOp
	// Join builds join(t,u).
	Join = trace.JoinOp
	// VolatileRead builds vrd(t,x).
	VolatileRead = trace.VRd
	// VolatileWrite builds vwr(t,x).
	VolatileWrite = trace.VWr
	// BarrierArrive builds barrier(t,b).
	BarrierArrive = trace.BarrierOp
)

// Runtime couples a concurrent Go program with a detector (the RoadRunner
// model, §7); Thread, Var, Array, Mutex, Volatile and Barrier are its
// instrumented primitives.
type (
	// Runtime is an instrumented execution environment.
	Runtime = rtsim.Runtime
	// Thread is an instrumented thread identity.
	Thread = rtsim.Thread
	// Var is an instrumented memory location.
	Var = rtsim.Var
	// Array is a block of instrumented memory locations.
	Array = rtsim.Array
	// Mutex is an instrumented lock.
	Mutex = rtsim.Mutex
	// Volatile is an instrumented volatile location.
	Volatile = rtsim.Volatile
	// Barrier is an instrumented cyclic barrier.
	Barrier = rtsim.Barrier
)

// metricsSampleInterval is the per-thread latency sampling stride used when
// a Metrics registry is attached: every 64th event a thread performs is
// timed into the latency.* histograms. Dense enough to fill histograms on
// realistic runs, sparse enough that the sampled run stays usable.
const metricsSampleInterval = 64

// New constructs a detector variant; see the variant constants. With no
// options the shadow tables get mid-sized hints (they grow on demand, so
// hints only matter for construction cost):
//
//	d, err := verifiedft.New(verifiedft.V2)
//	d, err := verifiedft.New(verifiedft.V2,
//		verifiedft.WithThreads(64),
//		verifiedft.WithMaxReportsPerVar(1),
//		verifiedft.WithMetrics(m))
func New(variant string, opts ...Option) (Detector, error) {
	s := settings{cfg: core.DefaultConfig()}
	for _, o := range opts {
		o.applyNew(&s)
	}
	d, err := core.New(variant, s.cfg)
	if err != nil {
		return nil, err
	}
	if s.metrics != nil {
		return core.InstrumentLatency(d, s.metrics, metricsSampleInterval), nil
	}
	return d, nil
}

// NewWithConfig constructs a detector from an explicit Config.
//
// Deprecated: use New with options (WithConfig for a wholesale Config).
func NewWithConfig(variant string, cfg Config) (Detector, error) {
	return New(variant, WithConfig(cfg))
}

// DefaultConfig returns the shadow-table size hints New starts from.
//
// Deprecated: New's defaults apply without it; use WithThreads, WithVars,
// WithLocks or WithConfig to deviate.
func DefaultConfig() Config { return core.DefaultConfig() }

// Variants lists all detector variant names.
func Variants() []string { return core.Variants() }

// NewRuntime returns an instrumented runtime delivering events to d; a nil
// detector gives an uninstrumented baseline runtime.
func NewRuntime(d Detector) *Runtime { return rtsim.New(d) }

// ValidateTrace checks the §2 feasibility constraints.
func ValidateTrace(tr Trace) error { return trace.Validate(tr) }

// CheckTrace validates tr, lowers extended operations, and replays it
// through a fresh detector (VerifiedFT-v2 unless WithVariant says
// otherwise), returning every detected race:
//
//	reports, err := verifiedft.CheckTrace(tr)
//	reports, err := verifiedft.CheckTrace(tr,
//		verifiedft.WithVariant(verifiedft.FTCAS),
//		verifiedft.WithBarrierParties(map[verifiedft.LockID]int{0: 4}),
//		verifiedft.WithMetrics(m))
//
// Shadow tables are sized from the trace's contents. With WithMetrics, the
// replay is latency-sampled and the detector's internal counters are frozen
// into the registry under the variant name when it returns.
func CheckTrace(tr Trace, opts ...CheckOption) ([]Report, error) {
	s := settings{variant: V2}
	for _, o := range opts {
		o.applyCheck(&s)
	}
	if err := trace.Validate(tr); err != nil {
		return nil, err
	}
	low := tr.Desugar(s.parties)
	cfg := configFor(low)
	cfg.MaxReportsPerVar = s.cfg.MaxReportsPerVar
	d, err := core.New(s.variant, cfg)
	if err != nil {
		return nil, err
	}
	var det Detector = d
	if s.metrics != nil {
		det = core.InstrumentLatency(d, s.metrics, metricsSampleInterval)
	}
	reports := core.Replay(det, low)
	if s.metrics != nil {
		// Replay is sequential and has returned: the detector is quiescent,
		// so its per-thread counters are coherent and safe to freeze.
		if ss, ok := d.(core.StatsSource); ok {
			s.metrics.RegisterSource(s.variant, ss.Stats().Source())
		}
	}
	return reports, nil
}

// CheckTraceWith is CheckTrace with an explicit detector variant.
//
// Deprecated: use CheckTrace(tr, WithVariant(variant)).
func CheckTraceWith(variant string, tr Trace) ([]Report, error) {
	return CheckTrace(tr, WithVariant(variant))
}

// HasRace is the oracle of §2: it decides, directly from the happens-before
// relation, whether the trace contains two concurrent conflicting accesses.
// It is independent of the detector implementation and exists for
// ground-truth comparison.
func HasRace(tr Trace) (bool, error) {
	if err := trace.Validate(tr); err != nil {
		return false, err
	}
	return hb.Analyze(tr.Desugar(nil)).HasRace(), nil
}

// configFor sizes shadow tables from a (lowered) trace's contents. Locks
// matter too: volatile and barrier lowering synthesizes lock ids, and a
// trace using a lock id far above the default hint would otherwise pay
// repeated table growth during replay.
func configFor(tr Trace) Config {
	cfg := Config{Threads: 8, Vars: 64, Locks: 16}
	for _, op := range tr {
		if int(op.T)+1 > cfg.Threads {
			cfg.Threads = int(op.T) + 1
		}
		if op.IsAccess() && int(op.X)+1 > cfg.Vars {
			cfg.Vars = int(op.X) + 1
		}
		if (op.Kind == trace.Acquire || op.Kind == trace.Release) && int(op.M)+1 > cfg.Locks {
			cfg.Locks = int(op.M) + 1
		}
	}
	return cfg
}

// Version identifies this implementation. 2.0.0 is the options-based API:
// CheckTrace takes CheckOptions instead of a variadic parties map, New
// takes Options instead of a Config, and both accept WithMetrics.
const Version = "2.0.0"
