// Package verifiedft is a Go implementation of VerifiedFT (Wilcox,
// Flanagan, Freund — PPoPP 2018): a precise dynamic data-race detector in
// the FastTrack family whose core algorithm is simple enough to verify,
// with lock-free fast paths for the three most common analysis cases.
//
// The package offers two levels of API.
//
// # Trace checking
//
// Build or parse a trace in the §2 trace language and check it:
//
//	tr := verifiedft.Trace{
//		verifiedft.Fork(0, 1),
//		verifiedft.Write(0, 0),
//		verifiedft.Write(1, 0),
//	}
//	reports, err := verifiedft.CheckTrace(tr)
//
// CheckTrace validates feasibility, lowers extended operations (volatiles,
// barriers), replays the trace through a VerifiedFT-v2 detector and returns
// one report per detected race. The analysis is precise: it reports at
// least one race if and only if the trace has two concurrent conflicting
// accesses (Theorem 3.1).
//
// # Online checking
//
// Attach a detector to a running concurrent program through the Runtime,
// which mirrors the RoadRunner execution model (§7): every instrumented
// operation invokes the analysis inline in the acting goroutine.
//
//	d, _ := verifiedft.New(verifiedft.V2)
//	rt := verifiedft.NewRuntime(d)
//	main := rt.Main()
//	x := rt.NewVar()
//	child := main.Go(func(w *verifiedft.Thread) { x.Store(w, 1) })
//	x.Store(main, 2) // races with the child's store
//	main.Join(child)
//	races := rt.Reports()
//
// Seven detector variants share the Detector interface: the three
// VerifiedFT stages the paper evaluates (V1, V15, V2), the two prior
// FastTrack implementations it compares against (FTMutex, FTCAS), and two
// classical baselines (DJIT, Eraser). V2 is the paper's contribution and
// the right default.
package verifiedft

import (
	"io"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/hb"
	"repro/internal/parcheck"
	"repro/internal/rtsim"
	"repro/internal/spec"
	"repro/internal/trace"
)

// Detector variant names accepted by New.
const (
	// V1 is VerifiedFT-v1: every handler fully lock-protected (Fig. 3).
	V1 = "vft-v1"
	// V15 is VerifiedFT-v1.5: lock-free same-epoch cases only.
	V15 = "vft-v1.5"
	// V2 is VerifiedFT-v2, the paper's algorithm (Fig. 4): lock-free
	// [Read Same Epoch], [Write Same Epoch] and [Read Shared Same Epoch].
	V2 = "vft-v2"
	// FTMutex is the prior write-protected/optimistic-retry FastTrack.
	FTMutex = "ft-mutex"
	// FTCAS is the prior CAS-packed FastTrack.
	FTCAS = "ft-cas"
	// DJIT is a pure vector-clock detector (no epochs).
	DJIT = "djit"
	// Eraser is the classical lockset detector (imprecise).
	Eraser = "eraser"
)

// Detector is the six-handler event interface of the idealized
// implementations; see the core package for the handler contracts.
type Detector = core.Detector

// Report describes one detected race.
type Report = core.Report

// Config sizes a detector's shadow tables (hints; tables grow on demand).
type Config = core.Config

// Rule identifies a Fig. 2 analysis rule.
type Rule = spec.Rule

// Tid, Var and Lock are the identity types of the trace language.
type (
	// Tid is a thread identifier.
	Tid = epoch.Tid
	// VarID is a variable identifier.
	VarID = trace.Var
	// LockID is a lock identifier.
	LockID = trace.Lock
)

// Op is one operation of the trace language; Trace is a sequence of them.
type (
	// Op is a single trace operation.
	Op = trace.Op
	// Trace is an execution trace.
	Trace = trace.Trace
	// Source is a pull iterator over trace operations (Next returns
	// io.EOF at end of stream) — the streaming counterpart of Trace.
	Source = trace.Source
)

// NewSliceSource adapts a materialized Trace to the Source interface.
var NewSliceSource = trace.NewSliceSource

// NewTraceDecoder returns a Source decoding r incrementally, sniffing the
// encoding: gzip is transparently decompressed, then the binary format is
// recognized by its magic, and anything else reads as the text format. A
// binary stream from a newer writer fails with a typed
// *UnsupportedVersionError rather than a corruption error.
func NewTraceDecoder(r io.Reader) (Source, error) { return trace.NewDecoder(r) }

// EncodeText writes tr in the line-oriented text trace format.
func EncodeText(w io.Writer, tr Trace) error { return trace.Encode(w, tr) }

// EncodeBinary writes tr in the binary trace format, by default at the
// newest version (BinaryFormatVersion):
//
//	err := verifiedft.EncodeBinary(f, tr)
//	err := verifiedft.EncodeBinary(f, tr, verifiedft.WithFormatVersion(1))
//
// WithFormatVersion pins an older version for consumers that predate it;
// encoding an operation kind the pinned version cannot carry fails.
func EncodeBinary(w io.Writer, tr Trace, opts ...EncodeOption) error {
	s := encodeSettings{version: trace.MaxBinaryVersion}
	for _, o := range opts {
		o.applyEncode(&s)
	}
	return trace.EncodeBinaryVersion(w, tr, s.version)
}

// Trace-operation constructors (§2 syntax, plus the Go-synchronization
// kinds of trace format v2).
var (
	// Read builds rd(t,x).
	Read = trace.Rd
	// Write builds wr(t,x).
	Write = trace.Wr
	// Acquire builds acq(t,m).
	Acquire = trace.Acq
	// Release builds rel(t,m).
	Release = trace.Rel
	// Fork builds fork(t,u).
	Fork = trace.ForkOp
	// Join builds join(t,u).
	Join = trace.JoinOp
	// VolatileRead builds vrd(t,x).
	VolatileRead = trace.VRd
	// VolatileWrite builds vwr(t,x).
	VolatileWrite = trace.VWr
	// BarrierArrive builds barrier(t,b).
	BarrierArrive = trace.BarrierOp
	// ChanSend builds send(t,c), a channel send (see WithChanCapacities
	// for buffered channels; a send without buffer room blocks t until a
	// matching ChanRecv).
	ChanSend = trace.SendOp
	// ChanRecv builds recv(t,c), a channel receive.
	ChanRecv = trace.RecvOp
	// ChanClose builds close(t,c), a channel close.
	ChanClose = trace.CloseOp
	// AtomicLoad builds aload(t,a), a sync/atomic load.
	AtomicLoad = trace.ALoad
	// AtomicStore builds astore(t,a), a sync/atomic store.
	AtomicStore = trace.AStore
	// AtomicRMW builds armw(t,a), a sync/atomic read-modify-write.
	AtomicRMW = trace.ARMW
	// OnceDo builds once(t,o), a sync.Once.Do return.
	OnceDo = trace.OnceOp
)

// UnsupportedVersionError reports a binary trace written by a newer
// format version than this build reads; it is the "upgrade the reader"
// error, as opposed to a corruption error.
type UnsupportedVersionError = trace.UnsupportedVersionError

// BinaryFormatVersion is the newest binary wire-format version this build
// reads and writes (see EncodeBinary and WithFormatVersion).
const BinaryFormatVersion = trace.MaxBinaryVersion

// Runtime couples a concurrent Go program with a detector (the RoadRunner
// model, §7); Thread, Var, Array, Mutex, Volatile and Barrier are its
// instrumented primitives.
type (
	// Runtime is an instrumented execution environment.
	Runtime = rtsim.Runtime
	// Thread is an instrumented thread identity.
	Thread = rtsim.Thread
	// Var is an instrumented memory location.
	Var = rtsim.Var
	// Array is a block of instrumented memory locations.
	Array = rtsim.Array
	// Mutex is an instrumented lock.
	Mutex = rtsim.Mutex
	// Volatile is an instrumented volatile location.
	Volatile = rtsim.Volatile
	// Barrier is an instrumented cyclic barrier.
	Barrier = rtsim.Barrier
)

// metricsSampleInterval is the per-thread latency sampling stride used when
// a Metrics registry is attached: every 64th event a thread performs is
// timed into the latency.* histograms. Dense enough to fill histograms on
// realistic runs, sparse enough that the sampled run stays usable.
const metricsSampleInterval = 64

// New constructs a detector variant; see the variant constants. With no
// options the shadow tables get mid-sized hints (they grow on demand, so
// hints only matter for construction cost):
//
//	d, err := verifiedft.New(verifiedft.V2)
//	d, err := verifiedft.New(verifiedft.V2,
//		verifiedft.WithThreads(64),
//		verifiedft.WithMaxReportsPerVar(1),
//		verifiedft.WithMetrics(m))
func New(variant string, opts ...Option) (Detector, error) {
	s := settings{variant: variant, cfg: core.DefaultConfig()}
	for _, o := range opts {
		o.applyNew(&s)
	}
	if err := s.resolveClock(); err != nil {
		return nil, err
	}
	if err := s.resolveSampling(); err != nil {
		return nil, err
	}
	d, err := newDetector(s)
	if err != nil {
		return nil, err
	}
	if s.metrics != nil {
		return core.InstrumentLatency(d, s.metrics, metricsSampleInterval), nil
	}
	return d, nil
}

// newDetector builds the resolved settings' detector: the precise variant,
// wrapped in the sampling tier when one is configured. The inner
// detector's variable table is pre-sized for the expected sampled
// population only — the full id space is covered by the wrapper's
// four-byte decision words, which is the tier's lazy-materialization rule.
func newDetector(s settings) (Detector, error) {
	if s.sampling == nil {
		return core.New(s.variant, s.cfg)
	}
	innerCfg := s.cfg
	innerCfg.Vars = samplingVarHint(s.sampling.Rate, s.cfg.Vars)
	inner, err := core.New(s.variant, innerCfg)
	if err != nil {
		return nil, err
	}
	return core.NewSampling(inner, *s.sampling, s.cfg.Vars), nil
}

// Variants lists all detector variant names.
func Variants() []string { return core.Variants() }

// NewRuntime returns an instrumented runtime delivering events to d; a nil
// detector gives an uninstrumented baseline runtime.
func NewRuntime(d Detector) *Runtime { return rtsim.New(d) }

// ValidateTrace checks the §2 feasibility constraints.
func ValidateTrace(tr Trace) error { return trace.Validate(tr) }

// CheckSource is the streaming form of CheckTrace: it pulls operations
// from src through a pipeline of composable stages — incremental §2
// feasibility validation (erroring at the offending op index), on-the-fly
// lowering of extended operations, and dispatch into a fresh detector
// (VerifiedFT-v2 unless WithVariant says otherwise) — and returns every
// detected race once the stream ends:
//
//	src, err := verifiedft.NewTraceDecoder(file) // text, binary or gzip
//	reports, err := verifiedft.CheckSource(src,
//		verifiedft.WithVariant(verifiedft.FTCAS),
//		verifiedft.WithMaxReportsPerVar(1))
//
// Every stage holds state proportional to the id spaces in use, never to
// the stream's length, so arbitrarily long traces check in bounded memory
// (pair with WithMaxReportsPerVar on racy streams so the report list stays
// bounded too). Shadow tables start from the defaults and grow on demand.
// On a validation or decode error the error is returned and any reports
// from the consumed prefix are discarded, matching CheckTrace's contract
// that an infeasible trace yields no reports. With WithMetrics, the run is
// latency-sampled and the detector's counters are frozen into the registry
// under the variant name when the stream ends.
func CheckSource(src Source, opts ...CheckOption) ([]Report, error) {
	s := settings{variant: V2, cfg: core.DefaultConfig(), parallel: 1}
	for _, o := range opts {
		o.applyCheck(&s)
	}
	if err := s.resolveClock(); err != nil {
		return nil, err
	}
	if err := s.resolveSampling(); err != nil {
		return nil, err
	}
	if s.parallel != 1 {
		return checkParallel(src, s)
	}
	d, err := newDetector(s)
	if err != nil {
		return nil, err
	}
	var det Detector = d
	if s.metrics != nil {
		det = core.InstrumentLatency(d, s.metrics, metricsSampleInterval)
	}
	ext := s.extensions()
	pipe := trace.DesugarSource(trace.ValidateSource(src, ext), ext)
	for {
		op, err := pipe.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		core.Dispatch(det, op)
	}
	if s.metrics != nil {
		// The pipeline is sequential and has ended: the detector is
		// quiescent, so its per-thread counters are coherent and safe to
		// freeze.
		if ss, ok := d.(core.StatsSource); ok {
			s.metrics.RegisterSource(s.variant, ss.Stats().Source())
		}
	}
	return det.Reports(), nil
}

// checkParallel is CheckSource's WithParallelism arm: the same
// validation/lowering pipeline feeds the two-phase variable-sharded
// checker instead of a sequential detector. The report list is identical
// to the sequential replay's by construction (see internal/parcheck).
func checkParallel(src Source, s settings) ([]Report, error) {
	ext := s.extensions()
	pipe := trace.DesugarSource(trace.ValidateSource(src, ext), ext)
	return parcheck.Check(pipe, parcheckOptions(s))
}

// parcheckOptions maps resolved check settings onto the parallel
// checker's option set.
func parcheckOptions(s settings) parcheck.Options {
	return parcheck.Options{
		Variant:          s.variant,
		Workers:          s.parallel,
		MaxReportsPerVar: s.cfg.MaxReportsPerVar,
		Threads:          s.cfg.Threads,
		Vars:             s.cfg.Vars,
		Locks:            s.cfg.Locks,
		Metrics:          s.metrics,
		ClockImpl:        s.cfg.ClockImpl,
		DisablePool:      s.cfg.DisablePool,
		Sampling:         s.sampling,
	}
}

// CheckReader decodes a trace stream from r — sniffing gzip, the binary
// format and the text format, like the CLI tools — and checks it with
// CheckSource. The stream is never materialized.
func CheckReader(r io.Reader, opts ...CheckOption) ([]Report, error) {
	src, err := trace.NewDecoder(r)
	if err != nil {
		return nil, err
	}
	return CheckSource(src, opts...)
}

// CheckTrace validates tr, lowers extended operations, and replays it
// through a fresh detector (VerifiedFT-v2 unless WithVariant says
// otherwise), returning every detected race:
//
//	reports, err := verifiedft.CheckTrace(tr)
//	reports, err := verifiedft.CheckTrace(tr,
//		verifiedft.WithVariant(verifiedft.FTCAS),
//		verifiedft.WithBarrierParties(map[verifiedft.LockID]int{0: 4}),
//		verifiedft.WithMetrics(m))
//
// Sequentially it is a thin wrapper over CheckSource on a slice-backed
// Source, so the materialized and streaming paths cannot drift: identical
// operation sequences produce identical reports whichever entry point
// sees them. Because the trace is materialized, CheckTrace first runs a
// cheap O(n) id-space prescan and pre-sizes the shadow tables so they
// never grow mid-run; explicit WithThreads/WithVars/WithLocks/WithConfig
// options override the prescan. With WithParallelism, the materialized
// form additionally lets the checker fuse validation and lowering into
// the parallel prepass (parcheck.CheckTrace) — same reports, same errors,
// without the streaming pipeline's per-op dispatch on the serial phase.
func CheckTrace(tr Trace, opts ...CheckOption) ([]Report, error) {
	sized := make([]CheckOption, 0, len(opts)+1)
	sized = append(sized, withIDSpace(trace.Scan(tr)))
	sized = append(sized, opts...)
	s := settings{variant: V2, cfg: core.DefaultConfig(), parallel: 1}
	for _, o := range sized {
		o.applyCheck(&s)
	}
	if s.parallel != 1 {
		if err := s.resolveClock(); err != nil {
			return nil, err
		}
		if err := s.resolveSampling(); err != nil {
			return nil, err
		}
		return parcheck.CheckTrace(tr, s.extensions(), parcheckOptions(s))
	}
	return CheckSource(tr.Source(), sized...)
}

// Pre-sizing caps: a prescan hint eagerly allocates that many shadow
// entries, so hostile traces with huge sparse ids must not translate into
// huge tables. Beyond the cap, tables fall back to growing on demand.
const (
	maxThreadHint = 1 << 16 // the whole Tid space
	maxVarHint    = 1 << 20
	maxLockHint   = 1 << 20
)

// withIDSpace seeds the shadow-table hints from a trace prescan. It is
// prepended to the user's options so explicit sizing options win.
func withIDSpace(ids trace.IDSpace) CheckOption {
	return checkOption(func(s *settings) {
		s.cfg.Threads = clampHint(ids.Threads, maxThreadHint)
		s.cfg.Vars = clampHint(ids.Vars, maxVarHint)
		s.cfg.Locks = clampHint(ids.Locks, maxLockHint)
	})
}

func clampHint(n, max int) int {
	if n < 1 {
		return 1
	}
	if n > max {
		return max
	}
	return n
}

// HasRace is the oracle of §2: it decides, directly from the happens-before
// relation, whether the trace contains two concurrent conflicting accesses.
// It is independent of the detector implementation and exists for
// ground-truth comparison.
func HasRace(tr Trace) (bool, error) {
	if err := trace.Validate(tr); err != nil {
		return false, err
	}
	return hb.Analyze(tr.Desugar(nil)).HasRace(), nil
}

// Version identifies this implementation. 2.3.0 redesigns the trace
// language around the Go memory model: channel send/recv/close, atomic
// load/store/RMW and once-do are first-class operations (binary wire
// format v2, WithChanCapacities, EncodeBinary/WithFormatVersion), lowered
// onto pseudo-locks by the shared trace.Lowerer so every detector variant
// checks them unchanged. The deprecated NewWithConfig, DefaultConfig and
// CheckTraceWith wrappers from the 2.0 options migration are removed.
const Version = "2.3.0"
