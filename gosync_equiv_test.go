package verifiedft_test

import (
	"reflect"
	"testing"

	verifiedft "repro"
)

// The acceptance bar for the Go-synchronization lowering: every detector
// variant must report *identically* on a chan/atomic/once trace and its
// hand-desugared core equivalent — the core trace below is written by
// hand from DESIGN.md's lowering rules, not produced by calling Desugar.
// Full report equality (epochs, Seq, everything) is deliberate: it proves
// the lowering emits exactly the documented pseudo-lock protocol, not
// merely something race-equivalent.
func TestGoSyncLoweringEquivalence(t *testing.T) {
	type tc struct {
		name  string
		caps  map[verifiedft.LockID]int
		sugar verifiedft.Trace
		core  verifiedft.Trace
		// racyVars is the precise-detector verdict, checked once per case
		// under V2 so the fixtures themselves stay honest.
		racyVars map[verifiedft.VarID]bool
	}
	cases := []tc{
		{
			// An atomic store releases, load and RMW acquire: one pair of
			// core lock ops per atomic op, all on the location's
			// pseudo-lock.
			name: "atomics",
			sugar: verifiedft.Trace{
				verifiedft.Fork(0, 1),
				verifiedft.Write(0, 0),
				verifiedft.AtomicStore(0, 5),
				verifiedft.AtomicLoad(1, 5),
				verifiedft.Read(1, 0), // ordered via a5: no race
				verifiedft.AtomicRMW(1, 5),
				verifiedft.Write(1, 1),
				verifiedft.Read(0, 1), // unordered: races
				verifiedft.Join(0, 1),
			},
			core: verifiedft.Trace{
				verifiedft.Fork(0, 1),
				verifiedft.Write(0, 0),
				verifiedft.Acquire(0, 0), verifiedft.Release(0, 0),
				verifiedft.Acquire(1, 0), verifiedft.Release(1, 0),
				verifiedft.Read(1, 0),
				verifiedft.Acquire(1, 0), verifiedft.Release(1, 0),
				verifiedft.Write(1, 1),
				verifiedft.Read(0, 1),
				verifiedft.Join(0, 1),
			},
			racyVars: map[verifiedft.VarID]bool{0: false, 1: true},
		},
		{
			// The first Once executor releases the once's pseudo-lock;
			// every later executor acquires it.
			name: "once",
			sugar: verifiedft.Trace{
				verifiedft.Fork(0, 1),
				verifiedft.Write(0, 0),
				verifiedft.OnceDo(0, 2),
				verifiedft.OnceDo(1, 2),
				verifiedft.Read(1, 0), // ordered via the once
				verifiedft.Join(0, 1),
			},
			core: verifiedft.Trace{
				verifiedft.Fork(0, 1),
				verifiedft.Write(0, 0),
				verifiedft.Acquire(0, 0), verifiedft.Release(0, 0),
				verifiedft.Acquire(1, 0), verifiedft.Release(1, 0),
				verifiedft.Read(1, 0),
				verifiedft.Join(0, 1),
			},
			racyVars: map[verifiedft.VarID]bool{0: false},
		},
		{
			// Buffered channel, capacity 2: the k-th send and the k-th
			// receive pair on slot lock k mod C, so "recv of the k-th
			// value happens-after the k-th send" and nothing more.
			name: "chan-buffered",
			caps: map[verifiedft.LockID]int{0: 2},
			sugar: verifiedft.Trace{
				verifiedft.Fork(0, 1),
				verifiedft.Write(0, 0),
				verifiedft.ChanSend(0, 0),
				verifiedft.ChanSend(0, 0),
				verifiedft.ChanRecv(1, 0),
				verifiedft.Read(1, 0), // ordered by slot 0
				verifiedft.Write(1, 1),
				verifiedft.Read(0, 1), // unordered: races
				verifiedft.ChanRecv(1, 0),
				verifiedft.Join(0, 1),
			},
			core: verifiedft.Trace{
				verifiedft.Fork(0, 1),
				verifiedft.Write(0, 0),
				verifiedft.Acquire(0, 0), verifiedft.Release(0, 0), // send -> slot 0
				verifiedft.Acquire(0, 1), verifiedft.Release(0, 1), // send -> slot 1
				verifiedft.Acquire(1, 0), verifiedft.Release(1, 0), // recv <- slot 0
				verifiedft.Read(1, 0),
				verifiedft.Write(1, 1),
				verifiedft.Read(0, 1),
				verifiedft.Acquire(1, 1), verifiedft.Release(1, 1), // recv <- slot 1
				verifiedft.Join(0, 1),
			},
			racyVars: map[verifiedft.VarID]bool{0: false, 1: true},
		},
		{
			// Unbuffered channel: the send blocks, and the whole
			// rendezvous — two rounds of sender-then-receiver pairs on
			// one lock, ordering the parties both ways — is emitted at
			// the receive.
			name: "chan-unbuffered",
			sugar: verifiedft.Trace{
				verifiedft.Fork(0, 1),
				verifiedft.Write(1, 0),
				verifiedft.ChanSend(1, 0),
				verifiedft.ChanRecv(0, 0),
				verifiedft.Read(0, 0), // ordered by the rendezvous
				verifiedft.Join(0, 1),
			},
			core: verifiedft.Trace{
				verifiedft.Fork(0, 1),
				verifiedft.Write(1, 0),
				verifiedft.Acquire(1, 0), verifiedft.Release(1, 0),
				verifiedft.Acquire(0, 0), verifiedft.Release(0, 0),
				verifiedft.Acquire(1, 0), verifiedft.Release(1, 0),
				verifiedft.Acquire(0, 0), verifiedft.Release(0, 0),
				verifiedft.Read(0, 0),
				verifiedft.Join(0, 1),
			},
			racyVars: map[verifiedft.VarID]bool{0: false},
		},
		{
			// Close releases the channel's close lock; a receive on the
			// closed-and-drained channel acquires it, ordering the
			// zero-value receive after the close.
			name: "chan-close",
			sugar: verifiedft.Trace{
				verifiedft.Fork(0, 1),
				verifiedft.Write(0, 0),
				verifiedft.ChanClose(0, 0),
				verifiedft.ChanRecv(1, 0),
				verifiedft.Read(1, 0), // ordered by the close
				verifiedft.Join(0, 1),
			},
			core: verifiedft.Trace{
				verifiedft.Fork(0, 1),
				verifiedft.Write(0, 0),
				verifiedft.Acquire(0, 0), verifiedft.Release(0, 0),
				verifiedft.Acquire(1, 0), verifiedft.Release(1, 0),
				verifiedft.Read(1, 0),
				verifiedft.Join(0, 1),
			},
			racyVars: map[verifiedft.VarID]bool{0: false},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, variant := range verifiedft.Variants() {
				sugarOpts := []verifiedft.CheckOption{verifiedft.WithVariant(variant)}
				if tc.caps != nil {
					sugarOpts = append(sugarOpts, verifiedft.WithChanCapacities(tc.caps))
				}
				got, err := verifiedft.CheckTrace(tc.sugar, sugarOpts...)
				if err != nil {
					t.Fatalf("%s sugar: %v", variant, err)
				}
				want, err := verifiedft.CheckTrace(tc.core, verifiedft.WithVariant(variant))
				if err != nil {
					t.Fatalf("%s core: %v", variant, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: lowered reports diverge from hand-desugared:\n%v\nvs\n%v",
						variant, got, want)
				}
			}
			// The fixture means what its comments claim (precise verdict).
			reports, err := verifiedft.CheckTrace(tc.sugar, append(
				[]verifiedft.CheckOption{verifiedft.WithVariant(verifiedft.V2)},
				optCaps(tc.caps)...)...)
			if err != nil {
				t.Fatal(err)
			}
			racy := map[verifiedft.VarID]bool{}
			for _, r := range reports {
				racy[r.X] = true
			}
			for x, want := range tc.racyVars {
				if racy[x] != want {
					t.Fatalf("v2 verdict on x%d = %v, want %v (reports %v)", x, racy[x], want, reports)
				}
			}
		})
	}
}

func optCaps(caps map[verifiedft.LockID]int) []verifiedft.CheckOption {
	if caps == nil {
		return nil
	}
	return []verifiedft.CheckOption{verifiedft.WithChanCapacities(caps)}
}

// Sequential and parallel checking agree byte for byte on a
// channel/atomic/once trace — the WithParallelism leg of the acceptance
// criterion (the vft-server leg lives in internal/ingest's e2e suite).
func TestGoSyncParallelParity(t *testing.T) {
	caps := map[verifiedft.LockID]int{0: 1}
	tr := verifiedft.Trace{
		verifiedft.Fork(0, 1),
		verifiedft.Fork(0, 2),
		verifiedft.AtomicStore(0, 3),
		verifiedft.ChanSend(0, 0),
		verifiedft.ChanRecv(1, 0),
		verifiedft.AtomicLoad(1, 3),
		verifiedft.Write(1, 0),
		verifiedft.Write(2, 0), // write-write race with t1 (visible to every variant, even Eraser)
		verifiedft.OnceDo(1, 1),
		verifiedft.OnceDo(2, 1),
		verifiedft.Write(2, 1),
		verifiedft.Read(0, 1), // races with t2
		verifiedft.ChanClose(0, 0),
		verifiedft.ChanRecv(2, 0),
		verifiedft.Join(0, 1),
		verifiedft.Join(0, 2),
	}
	for _, variant := range verifiedft.Variants() {
		seq, err := verifiedft.CheckTrace(tr,
			verifiedft.WithVariant(variant), verifiedft.WithChanCapacities(caps))
		if err != nil {
			t.Fatalf("%s sequential: %v", variant, err)
		}
		par, err := verifiedft.CheckTrace(tr,
			verifiedft.WithVariant(variant), verifiedft.WithChanCapacities(caps),
			verifiedft.WithParallelism(4))
		if err != nil {
			t.Fatalf("%s parallel: %v", variant, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("%s: parallel reports diverge:\n%v\nvs\n%v", variant, seq, par)
		}
		if len(seq) == 0 {
			t.Fatalf("%s: fixture should race", variant)
		}
	}
}

// The encode options on the public surface: a v2 trace refuses to encode
// under WithFormatVersion(1), and the error is the typed version error.
func TestEncodeBinaryFormatVersion(t *testing.T) {
	tr := verifiedft.Trace{verifiedft.ChanSend(0, 0), verifiedft.ChanRecv(0, 0)}
	var buf writerBuffer
	if err := verifiedft.EncodeBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if err := verifiedft.EncodeBinary(&buf, tr, verifiedft.WithFormatVersion(1)); err == nil {
		t.Fatal("WithFormatVersion(1) accepted a channel op")
	}
	core := verifiedft.Trace{verifiedft.Write(0, 0)}
	if err := verifiedft.EncodeBinary(&buf, core, verifiedft.WithFormatVersion(1)); err != nil {
		t.Fatalf("v1 encoding of a core trace: %v", err)
	}
}

type writerBuffer struct{ b []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
