package verifiedft_test

import (
	"testing"

	verifiedft "repro"
)

func TestCheckTraceDetectsRace(t *testing.T) {
	tr := verifiedft.Trace{
		verifiedft.Fork(0, 1),
		verifiedft.Write(0, 0),
		verifiedft.Write(1, 0),
	}
	reports, err := verifiedft.CheckTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("reports = %v", reports)
	}
	if reports[0].X != 0 || reports[0].T != 1 {
		t.Fatalf("report fields: %+v", reports[0])
	}
}

func TestCheckTraceCleanProgram(t *testing.T) {
	tr := verifiedft.Trace{
		verifiedft.Fork(0, 1),
		verifiedft.Acquire(0, 0), verifiedft.Write(0, 0), verifiedft.Release(0, 0),
		verifiedft.Acquire(1, 0), verifiedft.Read(1, 0), verifiedft.Release(1, 0),
		verifiedft.Join(0, 1),
		verifiedft.Write(0, 0),
	}
	reports, err := verifiedft.CheckTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Fatalf("false positives: %v", reports)
	}
}

func TestCheckTraceRejectsInfeasible(t *testing.T) {
	tr := verifiedft.Trace{verifiedft.Release(0, 0)}
	if _, err := verifiedft.CheckTrace(tr); err == nil {
		t.Fatal("infeasible trace accepted")
	}
}

func TestCheckTraceExtendedOps(t *testing.T) {
	// Volatile publication: race-free.
	tr := verifiedft.Trace{
		verifiedft.Fork(0, 1),
		verifiedft.Write(0, 0),
		verifiedft.VolatileWrite(0, 9),
		verifiedft.VolatileRead(1, 9),
		verifiedft.Read(1, 0),
	}
	reports, err := verifiedft.CheckTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Fatalf("volatile publication misreported: %v", reports)
	}
	// Barrier ordering with explicit parties.
	tr = verifiedft.Trace{
		verifiedft.Fork(0, 1),
		verifiedft.Write(0, 0),
		verifiedft.BarrierArrive(0, 0),
		verifiedft.BarrierArrive(1, 0),
		verifiedft.Read(1, 0),
	}
	reports, err = verifiedft.CheckTrace(tr,
		verifiedft.WithBarrierParties(map[verifiedft.LockID]int{0: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Fatalf("barrier ordering misreported: %v", reports)
	}
}

func TestCheckTraceWithEveryVariant(t *testing.T) {
	racy := verifiedft.Trace{
		verifiedft.Fork(0, 1),
		verifiedft.Write(0, 0),
		verifiedft.Read(1, 0),
	}
	for _, v := range verifiedft.Variants() {
		if v == verifiedft.Eraser {
			continue // imprecise by design
		}
		reports, err := verifiedft.CheckTrace(racy, verifiedft.WithVariant(v))
		if err != nil {
			t.Fatal(err)
		}
		if len(reports) == 0 {
			t.Errorf("%s missed the race", v)
		}
	}
}

func TestHasRaceOracle(t *testing.T) {
	racy := verifiedft.Trace{
		verifiedft.Fork(0, 1),
		verifiedft.Write(0, 0),
		verifiedft.Write(1, 0),
	}
	ok, err := verifiedft.HasRace(racy)
	if err != nil || !ok {
		t.Fatalf("HasRace = %v, %v", ok, err)
	}
	clean := verifiedft.Trace{
		verifiedft.Fork(0, 1),
		verifiedft.Write(1, 0),
		verifiedft.Join(0, 1),
		verifiedft.Write(0, 0),
	}
	ok, err = verifiedft.HasRace(clean)
	if err != nil || ok {
		t.Fatalf("HasRace(clean) = %v, %v", ok, err)
	}
}

func TestOnlineAPI(t *testing.T) {
	d, err := verifiedft.New(verifiedft.V2)
	if err != nil {
		t.Fatal(err)
	}
	rt := verifiedft.NewRuntime(d)
	main := rt.Main()
	x := rt.NewVar()
	mu := rt.NewMutex()

	child := main.Go(func(w *verifiedft.Thread) {
		mu.Lock(w)
		x.Add(w, 1)
		mu.Unlock(w)
	})
	mu.Lock(main)
	x.Add(main, 1)
	mu.Unlock(main)
	main.Join(child)

	if reports := rt.Reports(); len(reports) != 0 {
		t.Fatalf("false positives: %v", reports)
	}
	if got := x.Load(main); got != 2 {
		t.Fatalf("value = %d", got)
	}
}

func TestNewRejectsUnknownVariant(t *testing.T) {
	if _, err := verifiedft.New("fasttrack-v9"); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestValidateTrace(t *testing.T) {
	good := verifiedft.Trace{verifiedft.Write(0, 0)}
	if err := verifiedft.ValidateTrace(good); err != nil {
		t.Fatal(err)
	}
	bad := verifiedft.Trace{verifiedft.Release(0, 0)}
	if err := verifiedft.ValidateTrace(bad); err == nil {
		t.Fatal("infeasible trace accepted")
	}
}

func TestCheckTraceVariantErrors(t *testing.T) {
	if _, err := verifiedft.CheckTrace(verifiedft.Trace{verifiedft.Read(0, 0)},
		verifiedft.WithVariant("nope")); err == nil {
		t.Fatal("unknown variant accepted")
	}
	if _, err := verifiedft.CheckTrace(verifiedft.Trace{verifiedft.Release(0, 0)},
		verifiedft.WithVariant(verifiedft.V1)); err == nil {
		t.Fatal("infeasible trace accepted")
	}
}

func TestHasRaceRejectsInfeasible(t *testing.T) {
	if _, err := verifiedft.HasRace(verifiedft.Trace{verifiedft.Release(0, 0)}); err == nil {
		t.Fatal("infeasible trace accepted")
	}
}

// configFor must size tables to the trace's largest ids; exercised through
// a trace with big thread, variable and lock ids.
func TestCheckTraceLargeIDs(t *testing.T) {
	tr := verifiedft.Trace{
		verifiedft.Fork(0, 1), verifiedft.Fork(1, 2), verifiedft.Fork(2, 3),
		verifiedft.Acquire(3, 900), verifiedft.Release(3, 900),
		verifiedft.Write(3, 500),
		verifiedft.Read(0, 500), // races
	}
	reports, err := verifiedft.CheckTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].X != 500 {
		t.Fatalf("reports = %v", reports)
	}
}

func TestCheckTraceMaxReportsPerVar(t *testing.T) {
	// A write-write race followed by a write-read race at the same
	// variable: two reports without the cap, one with it.
	tr := verifiedft.Trace{
		verifiedft.Fork(0, 1),
		verifiedft.Write(0, 0),
		verifiedft.Write(1, 0),
		verifiedft.Read(0, 0),
	}
	all, err := verifiedft.CheckTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := verifiedft.CheckTrace(tr, verifiedft.WithMaxReportsPerVar(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 || len(capped) != 1 {
		t.Fatalf("uncapped %d reports, capped %d", len(all), len(capped))
	}
}

func TestCheckTraceWithMetrics(t *testing.T) {
	m := verifiedft.NewMetrics()
	tr := verifiedft.Trace{
		verifiedft.Fork(0, 1),
		verifiedft.Write(0, 0),
		verifiedft.Write(1, 0),
	}
	if _, err := verifiedft.CheckTrace(tr, verifiedft.WithMetrics(m)); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if got := snap.Counters["vft-v2.writes.total"]; got != 2 {
		t.Fatalf("vft-v2.writes.total = %d, want 2 (snapshot %v)", got, snap.Counters)
	}
	if got := snap.Counters["vft-v2.reports.recorded"]; got != 1 {
		t.Fatalf("vft-v2.reports.recorded = %d, want 1", got)
	}
}

func TestNewWithOptions(t *testing.T) {
	m := verifiedft.NewMetrics()
	d, err := verifiedft.New(verifiedft.V2,
		verifiedft.WithThreads(4), verifiedft.WithVars(8), verifiedft.WithLocks(2),
		verifiedft.WithMaxReportsPerVar(1),
		verifiedft.WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	rt := verifiedft.NewRuntime(d)
	main := rt.Main()
	x := rt.NewVar()
	child := main.Go(func(w *verifiedft.Thread) { x.Store(w, 1) })
	x.Store(main, 2) // races with the child's store; cap keeps it to one report
	main.Join(child)
	if got := len(rt.Reports()); got != 1 {
		t.Fatalf("reports = %d, want 1 (WithMaxReportsPerVar)", got)
	}
	// The metrics wrapper forwards Stats; Unwrap reaches the detector too.
	ss, ok := verifiedft.Unwrap(d).(verifiedft.StatsSource)
	if !ok {
		t.Fatal("unwrapped detector is not a StatsSource")
	}
	snap := ss.Stats()
	if got := snap.Counters["writes.total"]; got != 2 {
		t.Fatalf("writes.total = %d, want 2", got)
	}
}

// The functional-options API covers everything the removed wrappers
// (CheckTraceWith, DefaultConfig, NewWithConfig) used to do.
func TestFunctionalOptionsCoverRemovedWrappers(t *testing.T) {
	racy := verifiedft.Trace{
		verifiedft.Fork(0, 1),
		verifiedft.Write(0, 0),
		verifiedft.Write(1, 0),
	}
	reports, err := verifiedft.CheckTrace(racy, verifiedft.WithVariant(verifiedft.V1))
	if err != nil || len(reports) != 1 {
		t.Fatalf("CheckTrace(WithVariant(V1)) = %v, %v", reports, err)
	}
	if _, err := verifiedft.CheckTrace(racy, verifiedft.WithVariant("nope")); err == nil {
		t.Fatal("CheckTrace accepted an unknown variant")
	}
	d, err := verifiedft.New(verifiedft.V2,
		verifiedft.WithThreads(8), verifiedft.WithVars(64), verifiedft.WithLocks(8))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(verifiedft.NewRuntime(d).Reports()); got != 0 {
		t.Fatalf("fresh detector has %d reports", got)
	}
}
