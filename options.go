package verifiedft

import (
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sample"
	"repro/internal/trace"
	"repro/internal/vc"
)

// Metrics is a registry of contention-free metric instruments. Attach one
// to New or CheckTrace with WithMetrics to observe a detector at work:
// sampled per-handler latency histograms stream into it live, and frozen
// detector counters (rule firings, fast/slow-path splits, shadow-table
// occupancy) are registered once the checked execution quiesces. A Metrics
// value is safe to read concurrently with the run — Snapshot only touches
// atomic instruments and frozen sources.
type Metrics = obs.Registry

// MetricsSnapshot is a point-in-time reading of a Metrics registry; it
// marshals to the JSON shape served by the tools' -metrics-addr endpoints.
type MetricsSnapshot = obs.Snapshot

// NewMetrics returns an empty metric registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// StatsSource is the optional observability extension of Detector: every
// detector returned by New implements it. Stats must be called at
// quiescence (no handler running); see the core package for the contract.
type StatsSource = core.StatsSource

// settings aggregates everything the option types can configure. New and
// CheckTrace each start from their own defaults and read the subset that
// concerns them.
type settings struct {
	variant  string
	cfg      Config
	parties  map[LockID]int
	chancaps map[LockID]int
	metrics  *Metrics
	// parallel is the CheckTrace/CheckSource worker count: 1 = the
	// sequential replay, 0 = parallel with GOMAXPROCS workers, n > 1 =
	// parallel with n workers.
	parallel int
	// clock is the WithClockImpl spelling, parsed by resolveClock at the
	// error-returning entry points ("" = dense).
	clock string
	// sampling is the WithSampling policy; nil is the precise tier. The
	// "sampled[:rate]" variant spelling also sets it, via resolveSampling.
	sampling *sample.Policy
}

// resolveClock parses the WithClockImpl selection into the Config, so an
// unknown name errors at New/CheckTrace rather than being ignored.
func (s *settings) resolveClock() error {
	impl, err := vc.ParseImpl(s.clock)
	if err != nil {
		return err
	}
	s.cfg.ClockImpl = impl
	return nil
}

// resolveSampling folds the "sampled[:rate]" variant spelling into the
// base variant plus a sampling policy and validates the resulting rate,
// erroring at the New/CheckTrace entry points. An explicit WithSampling
// wins over a rate embedded in the variant name.
func (s *settings) resolveSampling() error {
	base, pol, err := sample.ParseVariant(s.variant)
	if err != nil {
		return err
	}
	s.variant = base
	if s.sampling == nil {
		s.sampling = pol
	}
	if s.sampling != nil {
		return s.sampling.Validate()
	}
	return nil
}

// samplingVarHint scales a variable-table hint down to the expected
// sampled population (plus slack for the hash's variance), so the inner
// detector of the sampling tier pre-sizes for the variables it will
// actually materialize rather than the whole id space.
func samplingVarHint(rate float64, vars int) int {
	h := int(rate*float64(vars)) + 16
	if h > vars {
		h = vars
	}
	if h < 1 {
		h = 1
	}
	return h
}

// extensions folds the out-of-band trace parameters into the form the
// validation and lowering stages consume; nil when every default applies.
func (s *settings) extensions() *trace.Extensions {
	if s.parties == nil && s.chancaps == nil {
		return nil
	}
	return &trace.Extensions{BarrierParties: s.parties, ChanCapacity: s.chancaps}
}

// Option configures New.
type Option interface{ applyNew(*settings) }

// CheckOption configures CheckTrace.
type CheckOption interface{ applyCheck(*settings) }

// CommonOption is an option accepted by both New and CheckTrace
// (WithMaxReportsPerVar, WithMetrics, WithThreads, WithVars, WithLocks,
// WithConfig).
type CommonOption interface {
	Option
	CheckOption
}

type newOption func(*settings)

func (f newOption) applyNew(s *settings) { f(s) }

type checkOption func(*settings)

func (f checkOption) applyCheck(s *settings) { f(s) }

type commonOption func(*settings)

func (f commonOption) applyNew(s *settings)   { f(s) }
func (f commonOption) applyCheck(s *settings) { f(s) }

// WithVariant selects the detector variant CheckTrace replays the trace
// through (default V2). See the variant constants.
func WithVariant(variant string) CheckOption {
	return checkOption(func(s *settings) { s.variant = variant })
}

// WithBarrierParties sets the participant count per barrier id for barrier
// lowering (absent entries default to 2). Only traces containing
// BarrierArrive operations need it.
func WithBarrierParties(parties map[LockID]int) CheckOption {
	return checkOption(func(s *settings) { s.parties = parties })
}

// WithChanCapacities sets the buffer capacity per channel id (absent
// entries default to 0: an unbuffered channel). The capacities shape both
// feasibility — a send on a channel with buffer room completes at once,
// any other send blocks its thread until a receive — and the
// happens-before edges the lowering emits (the Go memory model's
// "the k-th receive happens before the (k+C)-th send completes"). Only
// traces containing channel operations need it.
func WithChanCapacities(caps map[LockID]int) CheckOption {
	return checkOption(func(s *settings) { s.chancaps = caps })
}

// WithMaxReportsPerVar caps race reports per variable, RoadRunner's
// warn-once discipline (0 = unlimited). Suppressed reports are counted, not
// silently lost: they appear as reports.dropped in the detector's stats.
//
// Quota precedence when checking through the ingestion service
// (internal/ingest, cmd/vft-server): this per-variable cap applies first,
// while the upload is being checked — a report it suppresses is never
// seen downstream. The reports that survive are then deduplicated into
// the tenant's depot (identical races collapse into one aggregate with a
// repetition count), and only then does the tenant-wide report quota
// apply, bounding *distinct* aggregated races: a fresh race beyond that
// quota is dropped and counted, while repeats of already-retained races
// keep aggregating regardless. The two caps are therefore complementary,
// not redundant — this one bounds per-upload noise from one hot variable,
// the tenant quota bounds long-term distinct-race retention.
func WithMaxReportsPerVar(n int) CommonOption {
	return commonOption(func(s *settings) { s.cfg.MaxReportsPerVar = n })
}

// WithClockImpl selects the vector-clock representation the detector's
// thread and lock clocks use: "dense" (the default — the paper's
// grow-on-demand slice, Fig. 3) or "tree" (a lazy tree-clock
// representation whose joins skip everything the destination already
// covers, cheapest for re-acquire and barrier-heavy synchronization).
// The two are observationally identical — same reports, same order, same
// Seq numbering, sequentially and under WithParallelism — differing only
// in cost; the conformance suite cross-checks them. An unknown name
// errors at New/CheckTrace time.
func WithClockImpl(impl string) CommonOption {
	return commonOption(func(s *settings) { s.clock = impl })
}

// WithMetrics attaches a metric registry. The detector is wrapped in a
// latency sampler (every metricsSampleInterval-th event per thread is timed
// into the registry's latency.* histograms), and — for CheckTrace, which
// owns the run's lifetime — the detector's internal counters are frozen
// into the registry under the variant name once the replay completes. A
// detector built by New is handed to the caller mid-flight, so there the
// caller freezes stats itself when its run quiesces:
//
//	if ss, ok := verifiedft.Unwrap(d).(verifiedft.StatsSource); ok {
//		m.RegisterSource("v2", ss.Stats().Source())
//	}
//
// Sampling costs roughly one table lookup and an increment per event plus
// a timed sample every interval; it is the opt-in observability mode, not
// the configuration to benchmark.
func WithMetrics(m *Metrics) CommonOption {
	return commonOption(func(s *settings) { s.metrics = m })
}

// samplingConfig aggregates what SamplingOption can tune.
type samplingConfig struct {
	seed uint64
}

// SamplingOption tunes WithSampling.
type SamplingOption func(*samplingConfig)

// WithSamplingSeed sets the sampling seed (default sample.DefaultSeed's
// fixed value, 1). The per-variable decision is a pure function of
// (seed, variable id), so two runs with the same seed and rate — on one
// machine or across a fleet, sequential or sharded — sample the same
// variables and report identically; distinct seeds give independent
// samples, which is how repeated deployments accumulate coverage.
func WithSamplingSeed(seed uint64) SamplingOption {
	return func(c *samplingConfig) { c.seed = seed }
}

// WithSampling selects the production-overhead sampling tier: each
// variable is kept with probability rate (decided once, deterministically
// from the seed), full epoch/vector-clock bookkeeping applies only to the
// kept variables, and an access to any other variable costs one
// shadow-word check — no clock is ever materialized for it. Reported
// races are always a subset of the precise tier's (at rate 1 exactly its
// report list, byte for byte); the tier trades recall for overhead, never
// precision. Rates outside [0, 1] error at New/CheckTrace time.
//
//	reports, err := verifiedft.CheckTrace(tr, verifiedft.WithSampling(0.01))
//	d, err := verifiedft.New(verifiedft.V2,
//		verifiedft.WithSampling(0.01, verifiedft.WithSamplingSeed(7)))
//
// The variant spelling "sampled" (vft-v2 at the 0.01 default rate) and
// "sampled:<rate>" select the same tier wherever variant names are
// parsed (WithVariant, vft-run -d, the server's ?variant=).
func WithSampling(rate float64, opts ...SamplingOption) CommonOption {
	return commonOption(func(s *settings) {
		c := samplingConfig{seed: sample.DefaultSeed}
		for _, o := range opts {
			o(&c)
		}
		s.sampling = &sample.Policy{Rate: rate, Seed: c.seed}
	})
}

// WithParallelism sets the number of shard workers CheckTrace and
// CheckSource use to replay the trace (default 1: the sequential
// replay). Any other value selects the two-phase parallel offline
// checker: a sequential synchronization prepass annotates every access
// with an interned clock snapshot, then read/write events are sharded by
// variable across n workers, each running the unmodified per-variable
// state machine. n <= 0 means GOMAXPROCS. The report list is identical
// to the sequential replay's — same reports, same order, same Seq
// numbering — for every detector variant.
//
// In parallel mode a WithMetrics registry receives the checker's own
// "parcheck" source (shard balance, queue depth, intern hit rate)
// instead of per-handler latency samples and detector counters.
func WithParallelism(n int) CheckOption {
	return checkOption(func(s *settings) {
		if n <= 0 {
			n = 0 // resolve to GOMAXPROCS at check time
		}
		s.parallel = n
	})
}

// WithThreads hints the thread shadow-table size (tables grow on demand).
func WithThreads(n int) CommonOption {
	return commonOption(func(s *settings) { s.cfg.Threads = n })
}

// WithVars hints the variable shadow-table size.
func WithVars(n int) CommonOption {
	return commonOption(func(s *settings) { s.cfg.Vars = n })
}

// WithLocks hints the lock shadow-table size.
func WithLocks(n int) CommonOption {
	return commonOption(func(s *settings) { s.cfg.Locks = n })
}

// WithConfig replaces the whole shadow-table configuration at once; later
// WithThreads/WithVars/WithLocks/WithMaxReportsPerVar options still apply
// on top. For CheckTrace it also overrides the automatic pre-sizing
// prescan.
func WithConfig(cfg Config) CommonOption {
	return commonOption(func(s *settings) { s.cfg = cfg })
}

// Unwrap returns the detector underneath the latency sampler WithMetrics
// installs, or d itself when it is not wrapped. Use it to reach the
// StatsSource of an instrumented detector. (The wrapper forwards Stats
// already; Unwrap exists for callers that need the concrete type.)
func Unwrap(d Detector) Detector { return core.LatencyInner(d) }

// encodeSettings aggregates what EncodeOption can configure.
type encodeSettings struct {
	version int
}

// EncodeOption configures EncodeBinary.
type EncodeOption interface{ applyEncode(*encodeSettings) }

type encodeOption func(*encodeSettings)

func (f encodeOption) applyEncode(s *encodeSettings) { f(s) }

// WithFormatVersion pins the binary wire-format version EncodeBinary
// writes (default: the newest, BinaryFormatVersion). Pin version 1 to
// produce traces for consumers that predate the Go-synchronization kinds;
// encoding such a kind at version 1 then fails, instead of smuggling an
// unknown kind past an old reader.
func WithFormatVersion(v int) EncodeOption {
	return encodeOption(func(s *encodeSettings) { s.version = v })
}
