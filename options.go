package verifiedft

import (
	"repro/internal/core"
	"repro/internal/obs"
)

// Metrics is a registry of contention-free metric instruments. Attach one
// to New or CheckTrace with WithMetrics to observe a detector at work:
// sampled per-handler latency histograms stream into it live, and frozen
// detector counters (rule firings, fast/slow-path splits, shadow-table
// occupancy) are registered once the checked execution quiesces. A Metrics
// value is safe to read concurrently with the run — Snapshot only touches
// atomic instruments and frozen sources.
type Metrics = obs.Registry

// MetricsSnapshot is a point-in-time reading of a Metrics registry; it
// marshals to the JSON shape served by the tools' -metrics-addr endpoints.
type MetricsSnapshot = obs.Snapshot

// NewMetrics returns an empty metric registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// StatsSource is the optional observability extension of Detector: every
// detector returned by New implements it. Stats must be called at
// quiescence (no handler running); see the core package for the contract.
type StatsSource = core.StatsSource

// settings aggregates everything the option types can configure. New and
// CheckTrace each start from their own defaults and read the subset that
// concerns them.
type settings struct {
	variant string
	cfg     Config
	parties map[LockID]int
	metrics *Metrics
}

// Option configures New.
type Option interface{ applyNew(*settings) }

// CheckOption configures CheckTrace.
type CheckOption interface{ applyCheck(*settings) }

// CommonOption is an option accepted by both New and CheckTrace
// (WithMaxReportsPerVar, WithMetrics).
type CommonOption interface {
	Option
	CheckOption
}

type newOption func(*settings)

func (f newOption) applyNew(s *settings) { f(s) }

type checkOption func(*settings)

func (f checkOption) applyCheck(s *settings) { f(s) }

type commonOption func(*settings)

func (f commonOption) applyNew(s *settings)   { f(s) }
func (f commonOption) applyCheck(s *settings) { f(s) }

// WithVariant selects the detector variant CheckTrace replays the trace
// through (default V2). See the variant constants.
func WithVariant(variant string) CheckOption {
	return checkOption(func(s *settings) { s.variant = variant })
}

// WithBarrierParties sets the participant count per barrier id for barrier
// lowering (absent entries default to 2). Only traces containing
// BarrierArrive operations need it.
func WithBarrierParties(parties map[LockID]int) CheckOption {
	return checkOption(func(s *settings) { s.parties = parties })
}

// WithMaxReportsPerVar caps race reports per variable, RoadRunner's
// warn-once discipline (0 = unlimited). Suppressed reports are counted, not
// silently lost: they appear as reports.dropped in the detector's stats.
func WithMaxReportsPerVar(n int) CommonOption {
	return commonOption(func(s *settings) { s.cfg.MaxReportsPerVar = n })
}

// WithMetrics attaches a metric registry. The detector is wrapped in a
// latency sampler (every metricsSampleInterval-th event per thread is timed
// into the registry's latency.* histograms), and — for CheckTrace, which
// owns the run's lifetime — the detector's internal counters are frozen
// into the registry under the variant name once the replay completes. A
// detector built by New is handed to the caller mid-flight, so there the
// caller freezes stats itself when its run quiesces:
//
//	if ss, ok := verifiedft.Unwrap(d).(verifiedft.StatsSource); ok {
//		m.RegisterSource("v2", ss.Stats().Source())
//	}
//
// Sampling costs roughly one table lookup and an increment per event plus
// a timed sample every interval; it is the opt-in observability mode, not
// the configuration to benchmark.
func WithMetrics(m *Metrics) CommonOption {
	return commonOption(func(s *settings) { s.metrics = m })
}

// WithThreads hints the thread shadow-table size (tables grow on demand).
func WithThreads(n int) Option {
	return newOption(func(s *settings) { s.cfg.Threads = n })
}

// WithVars hints the variable shadow-table size.
func WithVars(n int) Option {
	return newOption(func(s *settings) { s.cfg.Vars = n })
}

// WithLocks hints the lock shadow-table size.
func WithLocks(n int) Option {
	return newOption(func(s *settings) { s.cfg.Locks = n })
}

// WithConfig replaces the whole shadow-table configuration at once; later
// WithThreads/WithVars/WithLocks/WithMaxReportsPerVar options still apply
// on top.
func WithConfig(cfg Config) Option {
	return newOption(func(s *settings) { s.cfg = cfg })
}

// Unwrap returns the detector underneath the latency sampler WithMetrics
// installs, or d itself when it is not wrapped. Use it to reach the
// StatsSource of an instrumented detector. (The wrapper forwards Stats
// already; Unwrap exists for callers that need the concrete type.)
func Unwrap(d Detector) Detector { return core.LatencyInner(d) }
