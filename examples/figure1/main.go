// Figure 1: reproduces the analysis-state walkthrough of Fig. 1 of the
// paper, printing the same table — SA.V, SB.V, Sm.V, Sx.V, Sx.R, Sx.W after
// each operation — and ending with the Shared-Write race on the final
// write.
//
// Run with:
//
//	go run ./examples/figure1
package main

import (
	"fmt"

	"repro/internal/epoch"
	"repro/internal/spec"
	"repro/internal/trace"
)

func main() {
	const (
		tidA = epoch.Tid(0) // the paper's thread A
		tidB = epoch.Tid(1) // the paper's thread B
		varX = trace.Var(0)
		lkM  = trace.Lock(0)
	)

	// Install the figure's initial state: SA.V=⟨4,0⟩, SB.V=⟨0,8⟩,
	// Sx = {V:⟨0,0⟩, R:A@1, W:A@1}, Sm.V=⊥.
	s := spec.NewState(spec.VerifiedFT)
	s.Thread(tidA).Set(tidA, epoch.Make(tidA, 4))
	s.Thread(tidB).Set(tidB, epoch.Make(tidB, 8))
	sx := s.Var(varX)
	sx.R = epoch.Make(tidA, 1)
	sx.W = epoch.Make(tidA, 1)

	steps := []struct {
		label string
		op    trace.Op
	}{
		{"x = 0      (wr A x)", trace.Wr(tidA, varX)},
		{"rel(m)     (rel A m)", trace.Rel(tidA, lkM)},
		{"acq(m)     (acq B m)", trace.Acq(tidB, lkM)},
		{"s = x      (rd B x)", trace.Rd(tidB, varX)},
		{"t = x      (rd A x)", trace.Rd(tidA, varX)},
		{"x = 1      (wr A x)", trace.Wr(tidA, varX)},
	}

	fmt.Println("VerifiedFT analysis state evolution (paper Fig. 1)")
	fmt.Println()
	header := fmt.Sprintf("%-22s %-12s %-12s %-12s %-12s %-10s %-8s %s",
		"operation", "SA.V", "SB.V", "Sm.V", "Sx.V", "Sx.R", "Sx.W", "rule")
	fmt.Println(header)
	printRow := func(label string, rule spec.Rule) {
		fmt.Printf("%-22s %-12s %-12s %-12s %-12s %-10s %-8s [%v]\n",
			label,
			s.Thread(tidA), s.Thread(tidB), s.Lock(lkM),
			sx.V, sx.R, sx.W, rule)
	}
	printRow("initial", spec.RuleNone)
	for _, st := range steps {
		rule, err := s.Step(st.op)
		printRow(st.label, rule)
		if err != nil {
			fmt.Println()
			fmt.Println("Race!  ", err)
			fmt.Println("The final write by A is concurrent with B's read at B@8:")
			fmt.Println("Sx.V = <0@5,1@8> is not below SA.V = <0@5,1@0>.")
			return
		}
	}
	fmt.Println("unexpected: no race detected")
}
