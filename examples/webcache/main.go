// Webcache: a realistic buggy program found by the detector, then the
// fixed version shown clean — the intro's "under-synchronization" story.
//
// The program is a small web-object cache: worker goroutines serve
// requests; on a miss they fill the cache entry and update a hit/miss
// statistics block. The statistics block is updated under the cache lock —
// except for one "fast" statistics counter the author thought was safe to
// bump without the lock. VerifiedFT pinpoints exactly that counter.
//
// Run with:
//
//	go run ./examples/webcache
package main

import (
	"fmt"
	"log"

	verifiedft "repro"
)

const (
	workers  = 4
	requests = 200
	entries  = 16
)

// runCache serves requests through an instrumented cache. If buggy, the
// "fast counter" is bumped outside the lock.
func runCache(buggy bool) []verifiedft.Report {
	d, err := verifiedft.New(verifiedft.V2)
	if err != nil {
		log.Fatal(err)
	}
	rt := verifiedft.NewRuntime(d)
	main := rt.Main()

	cache := rt.NewArray(entries) // cached object per slot
	valid := rt.NewArray(entries) // slot-filled flags
	stats := rt.NewVar()          // total requests (the "fast counter")
	hits := rt.NewVar()
	mu := rt.NewMutex()

	main.Parallel(workers, func(w *verifiedft.Thread, id int) {
		for r := 0; r < requests; r++ {
			key := (r*7 + id*13) % entries

			if buggy {
				stats.Add(w, 1) // BUG: outside the lock — races
			}

			mu.Lock(w)
			if !buggy {
				stats.Add(w, 1)
			}
			if valid.Load(w, key) == 1 {
				hits.Add(w, 1)
				_ = cache.Load(w, key)
			} else {
				cache.Store(w, key, int64(key*key))
				valid.Store(w, key, 1)
			}
			mu.Unlock(w)
		}
	})
	return rt.Reports()
}

func main() {
	fmt.Println("web cache with the unlocked statistics counter:")
	reports := runCache(true)
	if len(reports) == 0 {
		fmt.Println("  (scheduler got lucky — rerun; the race is real)")
	}
	seen := map[verifiedft.VarID]bool{}
	for _, r := range reports {
		if !seen[r.X] {
			seen[r.X] = true
			fmt.Println("  ", r)
		}
	}

	fmt.Println()
	fmt.Println("fixed web cache (counter moved under the lock):")
	reports = runCache(false)
	fmt.Printf("  %d races\n", len(reports))
}
