// Quickstart: the smallest end-to-end use of both public APIs.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	verifiedft "repro"
)

func main() {
	// --- Trace API -------------------------------------------------------
	// Thread 0 forks thread 1; both write x without synchronization.
	racy := verifiedft.Trace{
		verifiedft.Fork(0, 1),
		verifiedft.Write(0, 0),
		verifiedft.Write(1, 0),
	}
	reports, err := verifiedft.CheckTrace(racy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("trace API — racy trace:")
	for _, r := range reports {
		fmt.Println("  ", r)
	}

	// The same trace with the writes ordered by a lock is race-free.
	clean := verifiedft.Trace{
		verifiedft.Fork(0, 1),
		verifiedft.Acquire(0, 0), verifiedft.Write(0, 0), verifiedft.Release(0, 0),
		verifiedft.Acquire(1, 0), verifiedft.Write(1, 0), verifiedft.Release(1, 0),
	}
	reports, err = verifiedft.CheckTrace(clean)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace API — locked trace: %d races\n", len(reports))

	// --- Online API ------------------------------------------------------
	// Attach a VerifiedFT-v2 detector to a real two-goroutine program.
	d, err := verifiedft.New(verifiedft.V2)
	if err != nil {
		log.Fatal(err)
	}
	rt := verifiedft.NewRuntime(d)
	main := rt.Main()
	counter := rt.NewVar()

	// BUG: the child updates the counter without the lock.
	child := main.Go(func(w *verifiedft.Thread) {
		counter.Add(w, 1)
	})
	counter.Add(main, 1)
	main.Join(child)

	fmt.Println("online API — unsynchronized counter:")
	for _, r := range rt.Reports() {
		fmt.Println("  ", r)
	}
	fmt.Printf("final counter value: %d\n", counter.Load(main))
}
