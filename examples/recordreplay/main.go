// Recordreplay: capture the exact event stream of a live concurrent run
// with a Recorder (teed behind the online detector), write it in the
// vft-race text format, and re-analyze it offline — detector replay,
// happens-before oracle, and a witness-chain explanation for each
// conflicting pair. This is the online→offline loop the differential test
// suite is built on, as a user-facing tool.
//
// Run with:
//
//	go run ./examples/recordreplay
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hb"
	"repro/internal/rtsim"
	"repro/internal/trace"
)

func main() {
	// Live run: the online detector and a recorder see the same stream.
	online := core.NewV2(core.DefaultConfig())
	recorder := core.NewRecorder()
	rt := rtsim.New(core.NewTee(online, recorder))
	main := rt.Main()

	account := rt.NewVar()
	audit := rt.NewVar()
	mu := rt.NewMutex()

	teller := main.Go(func(w *rtsim.Thread) {
		for i := 0; i < 3; i++ {
			mu.Lock(w)
			account.Add(w, 100)
			mu.Unlock(w)
			audit.Add(w, 1) // BUG: audit log updated outside the lock
		}
	})
	for i := 0; i < 3; i++ {
		mu.Lock(main)
		account.Add(main, -40)
		mu.Unlock(main)
		audit.Add(main, 1) // races with the teller's audit update
	}
	main.Join(teller)

	fmt.Printf("live run: %d reports\n", len(online.Reports()))
	for _, r := range online.Reports()[:min(2, len(online.Reports()))] {
		fmt.Println("  ", r)
	}

	// The recording is a feasible trace in the standard text format.
	tr := recorder.Trace()
	if err := trace.Validate(tr); err != nil {
		log.Fatalf("recorded trace infeasible: %v", err)
	}
	var buf bytes.Buffer
	if err := trace.Encode(&buf, tr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecorded %d events; first lines of the portable trace file:\n", len(tr))
	lines := bytes.SplitN(buf.Bytes(), []byte("\n"), 6)
	for _, l := range lines[:5] {
		fmt.Printf("  %s\n", l)
	}

	// Offline replay: a fresh detector and the ground-truth oracle agree
	// with the live verdict.
	replay := core.NewV2(core.DefaultConfig())
	core.Replay(replay, tr)
	oracle := hb.Analyze(tr)
	fmt.Printf("\noffline replay: %d reports; oracle: %d racy pairs\n",
		len(replay.Reports()), len(oracle.Races))

	// And the explanation: why the account is safe and the audit log not.
	g := hb.BuildExplainedGraph(tr)
	var shownOrdered, shownRace bool
	for _, v := range g.ExplainConflicts() {
		if v.Ordered && !shownOrdered {
			shownOrdered = true
			fmt.Println("\nan ordered pair (the lock does its job):")
			fmt.Println(g.Format(v))
		}
		if !v.Ordered && !shownRace {
			shownRace = true
			fmt.Println("\na racy pair (the audit counter):")
			fmt.Println(g.Format(v))
		}
		if shownOrdered && shownRace {
			break
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
