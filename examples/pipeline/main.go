// Pipeline: a race-free program using every synchronization primitive the
// runtime instruments — fork/join, locks, a volatile publication flag and
// a cyclic barrier — verified clean by all five FastTrack-family detectors,
// with the analysis-rule mix printed per detector.
//
// The program is a two-stage image pipeline: a producer stage writes tiles,
// all stages meet at a barrier, a filter stage reads its neighbours' tiles,
// and a final result is published through a volatile for the main thread.
//
// Run with:
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	verifiedft "repro"
	"repro/internal/spec"
)

const (
	stages = 4
	tiles  = 64
	rounds = 10
)

func runPipeline(variant string) error {
	d, err := verifiedft.New(variant)
	if err != nil {
		return err
	}
	rt := verifiedft.NewRuntime(d)
	main := rt.Main()

	image := rt.NewArray(stages * tiles)
	done := rt.NewVolatile()
	checksum := rt.NewVar()
	mu := rt.NewMutex()
	bar := rt.NewBarrier(stages)

	main.Parallel(stages, func(w *verifiedft.Thread, id int) {
		for round := 0; round < rounds; round++ {
			// Stage 1: each worker produces its own tile row.
			for tt := 0; tt < tiles; tt++ {
				image.Store(w, id*tiles+tt, int64(round*tt+id))
			}
			bar.Await(w)
			// Stage 2: filter using the neighbour's row (cross-thread
			// reads, ordered by the barrier). Two passes — blur then
			// sharpen — so the second pass rides the same-epoch fast
			// paths.
			next := (id + 1) % stages
			var acc int64
			for pass := 0; pass < 2; pass++ {
				for tt := 0; tt < tiles; tt++ {
					acc += image.Load(w, next*tiles+tt) >> uint(pass)
				}
			}
			mu.Lock(w)
			checksum.Add(w, acc&0xff)
			mu.Unlock(w)
			bar.Await(w)
		}
		if id == 0 {
			done.Store(w, 1) // publish completion
		}
	})

	if done.Load(main) != 1 {
		return fmt.Errorf("pipeline did not complete")
	}
	if n := len(rt.Reports()); n != 0 {
		return fmt.Errorf("%s: %d false positives, first: %v", variant, n, rt.Reports()[0])
	}

	counts := d.RuleCounts()
	fmt.Printf("%-10s clean; rule mix: SameEpoch=%d SharedSameEpoch=%d Exclusive=%d Share=%d Shared=%d\n",
		variant,
		counts[spec.ReadSameEpoch]+counts[spec.WriteSameEpoch],
		counts[spec.ReadSharedSameEpoch],
		counts[spec.ReadExclusive]+counts[spec.WriteExclusive],
		counts[spec.ReadShare],
		counts[spec.ReadShared]+counts[spec.WriteShared])
	return nil
}

func main() {
	fmt.Printf("barrier/volatile pipeline: %d stages x %d tiles x %d rounds\n\n",
		stages, tiles, rounds)
	for _, variant := range []string{
		verifiedft.V1, verifiedft.V15, verifiedft.V2,
		verifiedft.FTMutex, verifiedft.FTCAS,
	} {
		if err := runPipeline(variant); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nall detectors agree: no races")
}
