package verifiedft

import (
	"reflect"
	"testing"

	"repro/internal/conformance"
)

// TestClockImplReportIdentity is the tentpole acceptance check of the
// clock layer: across the conformance corpus, every detector variant
// produces a byte-identical report list under the dense and tree clock
// representations, both through the sequential replay and through the
// parallel checker — so WithClockImpl is purely a performance knob.
func TestClockImplReportIdentity(t *testing.T) {
	variants := Variants()
	for _, prog := range conformance.Programs() {
		// Two controlled schedules per program: racy programs race in
		// schedule-dependent positions, so this varies the report lists
		// the representations must agree on.
		for _, seed := range []uint64{1, 42} {
			tr, _, err := conformance.RunOne(prog, "pct", seed, nil)
			if err != nil {
				t.Fatalf("%s seed %d: %v", prog.Name, seed, err)
			}
			for _, variant := range variants {
				want, err := CheckTrace(tr, WithVariant(variant))
				if err != nil {
					t.Fatalf("%s/%s baseline: %v", prog.Name, variant, err)
				}
				for _, impl := range []string{"dense", "tree"} {
					seq, err := CheckTrace(tr, WithVariant(variant), WithClockImpl(impl))
					if err != nil {
						t.Fatalf("%s/%s/%s sequential: %v", prog.Name, variant, impl, err)
					}
					if !reflect.DeepEqual(want, seq) {
						t.Fatalf("%s/%s: sequential %s diverged from dense:\nwant %+v\ngot  %+v",
							prog.Name, variant, impl, want, seq)
					}
					par, err := CheckTrace(tr, WithVariant(variant), WithClockImpl(impl), WithParallelism(4))
					if err != nil {
						t.Fatalf("%s/%s/%s parallel: %v", prog.Name, variant, impl, err)
					}
					if !reflect.DeepEqual(want, par) {
						t.Fatalf("%s/%s: parallel %s diverged from dense sequential:\nwant %+v\ngot  %+v",
							prog.Name, variant, impl, want, par)
					}
				}
			}
		}
	}
}

// TestWithClockImplRejectsUnknown pins the error path: an unknown
// representation name fails loudly at every entry point instead of being
// silently ignored.
func TestWithClockImplRejectsUnknown(t *testing.T) {
	tr := Trace{Write(0, 0)}
	if _, err := CheckTrace(tr, WithClockImpl("lazy")); err == nil {
		t.Fatal("CheckTrace accepted unknown clock impl")
	}
	if _, err := CheckTrace(tr, WithClockImpl("lazy"), WithParallelism(2)); err == nil {
		t.Fatal("parallel CheckTrace accepted unknown clock impl")
	}
	if _, err := New(V2, WithClockImpl("lazy")); err == nil {
		t.Fatal("New accepted unknown clock impl")
	}
	if d, err := New(V2, WithClockImpl("tree")); err != nil || d == nil {
		t.Fatalf("New rejected the tree impl: %v", err)
	}
}
