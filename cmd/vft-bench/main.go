// Command vft-bench regenerates Table 1 of the paper: base time per
// program and checking overhead per detector variant, with geometric
// means; -ablation adds the §3 rule-change microbenchmarks. See
// internal/cli for the implementation and flags.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Bench(os.Args[1:], os.Stdout, os.Stderr))
}
