// Command vft-bench regenerates Table 1 of the paper: base time per
// program and checking overhead per detector variant, with geometric
// means; -ablation adds the §3 rule-change microbenchmarks. Alongside the
// text table it writes a machine-readable BENCH_table1.json (program,
// suite, base seconds, per-detector overhead, geometric means; -json
// renames or disables it). See internal/cli for the implementation and
// flags.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Bench(os.Args[1:], os.Stdout, os.Stderr))
}
