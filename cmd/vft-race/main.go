// Command vft-race checks a trace file for data races.
//
// Usage:
//
//	vft-race [-d variant] [-all] [-oracle] [-parties N] [file]
//
// The trace is read from the named file or stdin, in the line format of
// internal/trace (e.g. "wr 0 3", "acq 1 0", "fork 0 1", "# comment").
// Races print one per line; exit status is 1 if any race was found, 2 on
// usage or input errors, 0 otherwise. See internal/cli for the
// implementation.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Race(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
