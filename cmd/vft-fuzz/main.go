// Command vft-fuzz differentially fuzzes the whole detector stack on
// random feasible traces: oracle self-agreement, Theorem 3.1 precision of
// both specification flavors, detector first-report positions, and rule
// histograms. With -schedules N each trace is additionally re-executed as
// a concurrent program under N controlled schedules per trace (PCT or
// random-walk policy, -sched-policy), cross-checking every detector
// against the happens-before oracle on every explored interleaving; the
// whole run is a deterministic function of -seed, and a reported schedule
// seed replays its interleaving exactly. Divergences are delta-minimized
// and printed in the vft-race input format. See internal/cli and
// internal/conformance for the implementation and flags.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Fuzz(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
