// Command vft-fuzz differentially fuzzes the whole detector stack on
// random feasible traces: oracle self-agreement, Theorem 3.1 precision of
// both specification flavors, detector first-report positions, and rule
// histograms. Divergences are delta-minimized and printed in the vft-race
// input format. See internal/cli for the implementation and flags.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Fuzz(os.Args[1:], os.Stdout, os.Stderr))
}
