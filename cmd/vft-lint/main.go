// Command vft-lint statically checks minilang programs for data races
// without running them: it computes may-happen-in-parallel information
// from the spawn/wait, barrier and volatile structure plus Eraser-style
// locksets per access, and warns (file:line:col, with both access sites
// and the lockset evidence) on every potential race. The analysis is
// sound — a program vft-lint passes has no race on any schedule — but
// not precise; see internal/staticrace and the crosscheck harness for
// the measured precision. Exit codes are grep-style: 0 clean, 1 warnings,
// 2 error.
//
// Usage:
//
//	vft-lint [-json] program.vft ... | -
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Lint(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
