// Command vft-go checks real Go programs: it rewrites a single-directory
// Go package so every shared memory access and synchronization operation
// (go statements, sync.Mutex/RWMutex/WaitGroup/Once, channels,
// sync/atomic) reports into a runtime shim that streams a binary format-v2
// trace, then replays the captured trace through the verified detector. A
// flow-insensitive may-share analysis elides accesses that are provably
// goroutine-local (-elide, on by default) without changing any report.
//
// Usage:
//
//	vft-go [flags] build <pkg-dir>            instrument + compile only
//	vft-go [flags] run   <pkg-dir> [args...]  instrument, run, check
//	vft-go [flags] test  <pkg-dir> [args...]  instrument tests, go test, check
//
// Exit codes: 0 no race, 1 race found, 2 error. See internal/cli for
// flags (-elide, -o, -trace, -server, -metrics-addr) and internal/goinstr
// for the front-end.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.RunVftGo(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
