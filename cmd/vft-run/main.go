// Command vft-run executes a minilang program under a race detector: the
// interpreter routes every shared access and synchronization operation
// through the analysis, so concurrent programs can be written, shared and
// checked as plain source files (the repository's analogue of running a
// target program under RoadRunner, §7). See internal/minilang for the
// language and internal/cli for the flags.
//
// Usage:
//
//	vft-run [-d variant] [-runs N] program.vft
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.RunProg(os.Args[1:], os.Stdout, os.Stderr))
}
