// Command vft-run executes a minilang program under a race detector: the
// interpreter routes every shared access and synchronization operation
// through the analysis, so concurrent programs can be written, shared and
// checked as plain source files (the repository's analogue of running a
// target program under RoadRunner, §7). Recorded traces re-execute as live
// concurrent programs instead: binary and gzip inputs are recognized
// automatically, -trace forces it for text traces, and "-" reads stdin, so
// a captured stream pipes straight in (e.g. `gzip -dc t.bin.gz | vft-run -`
// works too, but plain `vft-run t.bin.gz` already decompresses). See
// internal/minilang for the language and internal/cli for the flags.
//
// Usage:
//
//	vft-run [-d variant] [-runs N] [-trace] program.vft | trace | -
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.RunProg(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
