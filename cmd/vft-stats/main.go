// Command vft-stats regenerates the §5 rule-frequency measurement and,
// with -per-program, the per-program lock-serialization table. See
// internal/cli for the implementation and flags.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Stats(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
