// Command vft-server is the multi-tenant trace-ingestion service:
// detection as a service over the repository's streaming trace formats.
// Clients POST binary, gzip or text trace streams to
// /v1/traces?tenant=NAME&variant=vft-v2; each upload is validated,
// lowered and checked through per-tenant variable-sharded parcheck
// workers in bounded memory, and the resulting race reports — verbatim
// per upload, deduplicated and aggregated per tenant — are served as
// JSON from /v1/reports. Saturation answers 429 + Retry-After instead of
// growing queues, and SIGTERM drains: accepted uploads finish, new ones
// get 503, and -state persists every tenant's reports across a restart.
// See internal/ingest for the service semantics and internal/cli for the
// flags.
//
// Usage:
//
//	vft-server [-addr host:port] [-state file] [-max-inflight N] ...
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Server(os.Args[1:], os.Stdout, os.Stderr))
}
