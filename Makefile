GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test race vet lint bench bench-parallel bench-sampling metrics-smoke stream-smoke static-smoke par-smoke perf-smoke server-smoke chan-smoke go-smoke sample-smoke fuzz fuzz-smoke soak coverage clean

all: build

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Static checks over the Go sources: vet always, staticcheck when it is on
# PATH (CI installs it; locally `go install honnef.co/go/tools/cmd/staticcheck@latest`).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# One quick Table 1 regeneration; BENCH_table1.json lands in the repo root.
bench:
	$(GO) run ./cmd/vft-bench -quick -iters 3

# The sequential-vs-sharded checking comparison (EXPERIMENTS.md E17);
# BENCH_parallel.json lands in the repo root. Drop -quick to reproduce the
# committed numbers at the paper-scale trace sizes.
bench-parallel:
	$(GO) run ./cmd/vft-bench -parallel 1,2,4,8 -quick -iters 3

# The sampling-tier overhead-vs-recall sweep (EXPERIMENTS.md E22);
# BENCH_sampling.json lands in the repo root. Drop -quick to reproduce the
# committed numbers. Exits nonzero if any rate violates the soundness
# gates (subset below 1.0, identity at 1.0).
bench-sampling:
	$(GO) run ./cmd/vft-bench -sampling -quick -iters 3

# End-to-end check of the live metrics endpoint: runs vft-bench with
# -metrics-addr and scrapes /metrics + /debug/vars while it serves.
metrics-smoke:
	$(GO) run ./scripts/metrics-smoke

# End-to-end check of streaming ingestion: pipes gzipped binary traces
# into `vft-run -` over stdin and verifies the verdict exit codes.
stream-smoke:
	$(GO) run ./scripts/stream-smoke

# End-to-end check of the static race analyzer: vft-lint over every
# shipped example, verifying exit codes, warning positions and -json.
static-smoke:
	$(GO) run ./scripts/static-smoke

# End-to-end check of the parallel checker under the Go race detector:
# a ~100k-op generated trace must produce byte-identical report lists
# sequentially and with WithParallelism(4), for every detector variant.
par-smoke:
	$(GO) run -race ./scripts/par-smoke

# End-to-end check of the clock layer: fast-path latency/allocs micro
# cells plus quick montecarlo/pmd offline arms under both clock
# representations (dense and tree), failing on any report divergence or
# fast-path allocation; the perf numbers are logged, not gated. A racy
# generated trace cross-checks byte-identity for every variant.
perf-smoke:
	$(GO) run ./scripts/perf-smoke
	$(GO) test -run TestClockImplReportIdentity -count=1 .
	$(GO) test -bench 'BenchmarkFastPathLatency/.*/vft-v2/' -benchtime 10000x -run xxx .

# End-to-end check of the multi-tenant ingestion service under the Go
# race detector: concurrent tenants streaming all three wire encodings
# must read back reports byte-identical to offline CheckTrace, saturation
# must answer 429 + Retry-After, and a drain/save/restart cycle must
# preserve every tenant's reports.
server-smoke:
	$(GO) run -race ./scripts/server-smoke

# End-to-end check of trace format v2's Go-synchronization kinds: two
# channel-heavy traces round-trip text -> binary-v2 -> vft-run -parallel
# -> vft-server upload, each leg's reports diffed against an offline
# CheckTrace with the same channel capacities.
chan-smoke:
	$(GO) run -race ./scripts/chan-smoke

# End-to-end check of the vft-go front-end over the real-Go corpus:
# every racy program must name its racy variable, every clean program
# must be silent, elide-on and elide-off canonical reports must be
# byte-identical, and elision must fire on at least half the corpus.
go-smoke:
	$(GO) run ./scripts/go-smoke -v

# End-to-end check of the sampling tier under the Go race detector: a
# rate sweep over a generated trace plus the conformance corpus, failing
# on any soundness violation (sampled reports must equal the precise
# reports filtered to sampled variables) or any rate-1.0 divergence.
sample-smoke:
	$(GO) run -race ./scripts/sample-smoke

# The differential fuzzers: the sequential trace fuzzer, the controlled
# schedule explorer, then a bounded run of each coverage-guided target.
fuzz:
	$(GO) run ./cmd/vft-fuzz -n 2000
	$(GO) run ./cmd/vft-fuzz -n 2000 -gosync
	$(GO) run ./cmd/vft-fuzz -n 200 -schedules 25
	$(GO) test ./internal/trace -run '^$$' -fuzz FuzzFromBytes -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -run '^$$' -fuzz FuzzDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -run '^$$' -fuzz FuzzBinaryRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/minilang -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/spec -run '^$$' -fuzz FuzzPrecision -fuzztime $(FUZZTIME)
	$(GO) test ./internal/staticrace -run '^$$' -fuzz FuzzStaticNoPanic -fuzztime $(FUZZTIME)
	$(GO) test ./internal/parcheck -run '^$$' -fuzz FuzzParallelEquivalence -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ingest -run '^$$' -fuzz FuzzIngestHTTP -fuzztime $(FUZZTIME)
	$(GO) test . -run '^$$' -fuzz FuzzSamplingSoundness -fuzztime $(FUZZTIME)

# Quick pass over every coverage-guided target's checked-in seed corpus
# (no fuzzing time budget — just the deterministic seeds, as CI does).
fuzz-smoke:
	$(GO) test ./internal/trace -run 'Fuzz' -count 1
	$(GO) test ./internal/minilang -run 'FuzzParse' -count 1
	$(GO) test ./internal/spec -run 'FuzzPrecision' -count 1
	$(GO) test ./internal/staticrace -run 'FuzzStaticNoPanic' -count 1
	$(GO) test ./internal/parcheck -run 'FuzzParallelEquivalence' -count 1
	$(GO) test ./internal/ingest -run 'FuzzIngestHTTP' -count 1
	$(GO) test . -run 'FuzzSamplingSoundness' -count 1

# Long-running schedule exploration (hundreds of schedules per program).
soak:
	VFT_SOAK=1 $(GO) test ./internal/conformance -timeout 60m -count 1 -v

coverage:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

clean:
	rm -f coverage.out BENCH_table1.json BENCH_parallel.json
