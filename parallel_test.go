package verifiedft

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/rtsim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// recordWorkload captures the feasible event stream one run of a harness
// workload delivers to a detector.
func recordWorkload(t testing.TB, name string, size int) Trace {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatalf("workloads.ByName(%q): %v", name, err)
	}
	rec := core.NewRecorder()
	rt := rtsim.New(rec)
	if size <= 0 {
		size = w.TestSize
	}
	w.Run(rt, size)
	return rec.Trace()
}

// TestParallelMatchesSequentialOnWorkloads is the tentpole acceptance
// check at the public API: on real harness workload traces, CheckTrace
// with WithParallelism produces the identical report list — for every
// detector variant and several worker counts.
func TestParallelMatchesSequentialOnWorkloads(t *testing.T) {
	for _, name := range []string{"montecarlo", "pmd", "sparse"} {
		tr := recordWorkload(t, name, 0)
		for _, variant := range Variants() {
			want, err := CheckTrace(tr, WithVariant(variant))
			if err != nil {
				t.Fatalf("%s/%s sequential: %v", name, variant, err)
			}
			for _, workers := range []int{2, 4} {
				got, err := CheckTrace(tr, WithVariant(variant), WithParallelism(workers))
				if err != nil {
					t.Fatalf("%s/%s parallel(%d): %v", name, variant, workers, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s/%s: parallel(%d) diverged:\nsequential: %+v\nparallel:   %+v",
						name, variant, workers, want, got)
				}
			}
		}
	}
}

// TestParallelMatchesSequentialOnGeneratedTraces covers racy inputs: the
// workloads are race-free by construction, so drive the public API over
// generated traces too (the heavy sweep lives in internal/parcheck).
func TestParallelMatchesSequentialOnGeneratedTraces(t *testing.T) {
	cfg := trace.DefaultGenConfig()
	cfg.Ops = 400
	for seed := int64(0); seed < 8; seed++ {
		tr := trace.Generate(rand.New(rand.NewSource(seed)), cfg)
		for _, variant := range Variants() {
			want, err := CheckTrace(tr, WithVariant(variant))
			if err != nil {
				t.Fatalf("seed %d %s sequential: %v", seed, variant, err)
			}
			got, err := CheckTrace(tr, WithVariant(variant), WithParallelism(3))
			if err != nil {
				t.Fatalf("seed %d %s parallel: %v", seed, variant, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("seed %d %s: parallel diverged\nsequential: %+v\nparallel:   %+v",
					seed, variant, want, got)
			}
		}
	}
}

// TestWithParallelismZeroMeansGOMAXPROCS: n <= 0 resolves to all cores
// and still matches the sequential replay.
func TestWithParallelismZeroMeansGOMAXPROCS(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 1 {
		t.Skip("no procs?")
	}
	tr := Trace{Fork(0, 1), Write(0, 0), Write(1, 0)}
	want, err := CheckTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CheckTrace(tr, WithParallelism(0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("parallel(GOMAXPROCS) diverged: %+v vs %+v", want, got)
	}
}

// TestParallelInfeasibleTrace: the parallel path keeps CheckTrace's
// contract that an infeasible trace yields an error and no reports.
func TestParallelInfeasibleTrace(t *testing.T) {
	tr := Trace{Acquire(0, 0), Acquire(1, 0)} // lock already held
	if _, err := CheckTrace(tr); err == nil {
		t.Fatal("sequential: want error")
	}
	reports, err := CheckTrace(tr, WithParallelism(4))
	if err == nil {
		t.Fatal("parallel: want error")
	}
	if reports != nil {
		t.Fatalf("parallel: want nil reports on error, got %+v", reports)
	}
}

// TestParallelMetricsSource: in parallel mode WithMetrics receives the
// checker's own "parcheck" source with the shard/intern accounting.
func TestParallelMetricsSource(t *testing.T) {
	tr := recordWorkload(t, "montecarlo", 0)
	m := NewMetrics()
	if _, err := CheckTrace(tr, WithParallelism(4), WithMetrics(m)); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.Gauges["parcheck.workers"] != 4 {
		t.Fatalf("parcheck.workers = %d, want 4", s.Gauges["parcheck.workers"])
	}
	if s.Counters["parcheck.ops.access"] == 0 {
		t.Fatal("parcheck.ops.access not recorded")
	}
	hits, misses := s.Counters["parcheck.intern.hits"], s.Counters["parcheck.intern.misses"]
	if hits+misses == 0 {
		t.Fatal("interner never consulted")
	}
	if s.Counters["parcheck.vc.freeze_reuses"] == 0 {
		t.Fatal("freeze cache never reused: copy-on-write snapshots are not sharing")
	}
}

// TestCheckTracePreSizesShadowTables asserts the satellite guarantee: on
// harness workload traces, the id-space prescan sizes every shadow table
// exactly, so the detector never grows one mid-run.
func TestCheckTracePreSizesShadowTables(t *testing.T) {
	for _, name := range []string{"montecarlo", "pmd", "sparse", "sor", "crypt"} {
		tr := recordWorkload(t, name, 0)
		for _, variant := range Variants() {
			m := NewMetrics()
			if _, err := CheckTrace(tr, WithVariant(variant), WithMetrics(m)); err != nil {
				t.Fatalf("%s/%s: %v", name, variant, err)
			}
			s := m.Snapshot()
			for _, table := range []string{"threads", "vars", "locks"} {
				key := fmt.Sprintf("%s.shadow.%s.grows", variant, table)
				if variant == Eraser && table == "locks" {
					continue // Eraser keeps no lock shadow table
				}
				if n, ok := s.Counters[key]; !ok {
					t.Errorf("%s/%s: counter %s missing", name, variant, key)
				} else if n != 0 {
					t.Errorf("%s/%s: %s = %d, want 0 (prescan under-sized the table)", name, variant, key, n)
				}
			}
		}
	}
}

// TestIDSpaceScanMatchesLowering checks the prescan against the lowering
// it predicts: replay the desugared stream and confirm every lowered id
// falls inside the scanned space.
func TestIDSpaceScanMatchesLowering(t *testing.T) {
	cfg := trace.DefaultGenConfig()
	for seed := int64(0); seed < 10; seed++ {
		tr := trace.Generate(rand.New(rand.NewSource(seed)), cfg)
		// Salt with extended ops to exercise the pseudo-lock arm.
		tr = append(Trace{VolatileWrite(0, 7), BarrierArrive(0, 3)}, tr...)
		ids := trace.Scan(tr)
		for _, op := range tr.Desugar(nil) {
			if int(op.T) >= ids.Threads {
				t.Fatalf("seed %d: thread %d outside scanned space %d", seed, op.T, ids.Threads)
			}
			switch op.Kind {
			case trace.Read, trace.Write:
				if int(op.X) >= ids.Vars {
					t.Fatalf("seed %d: var %d outside scanned space %d", seed, op.X, ids.Vars)
				}
			case trace.Acquire, trace.Release:
				if int(op.M) >= ids.Locks {
					t.Fatalf("seed %d: lowered lock %d outside scanned space %d", seed, op.M, ids.Locks)
				}
			}
		}
	}
}
