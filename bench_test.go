package verifiedft_test

// One benchmark per artifact of the paper's evaluation:
//
//	BenchmarkTable1            — §8 Table 1: every program × every detector
//	                             (run cmd/vft-bench for the formatted table
//	                             with overheads and the geo-mean line)
//	BenchmarkFigure1           — the Fig. 1 example trace through the spec
//	BenchmarkRuleFrequency     — the §5 rule-mix measurement (E3)
//	BenchmarkWriteSharedThrash — §3 ablation: VerifiedFT vs original
//	                             FastTrack [Write Shared] (E5)
//	BenchmarkJoinIncrement     — §3 ablation: the dropped [Join] increment (E6)
//	BenchmarkFastPathLatency   — per-access cost of the three lock-free
//	                             rules across detector variants
//	BenchmarkReadSharedScaling — the contended read-shared pattern that
//	                             separates v2 from v1/v1.5 (§5, §8)

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	verifiedft "repro"
	"repro/internal/arrayshadow"
	"repro/internal/core"
	"repro/internal/elide"
	"repro/internal/epoch"
	"repro/internal/rtsim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vc"
	"repro/internal/workloads"
)

// benchDetectors are Table 1's columns.
var benchDetectors = []string{"base", "ft-mutex", "ft-cas", "vft-v1", "vft-v1.5", "vft-v2"}

// BenchmarkTable1 runs every (program, detector) cell of Table 1, plus a
// "base" column (no detector). Overhead for a cell is its ns/op divided by
// the base ns/op minus one. Test sizes are used so `go test -bench .`
// stays minutes, not hours; cmd/vft-bench runs the full sizes.
func BenchmarkTable1(b *testing.B) {
	for _, w := range workloads.All() {
		for _, det := range benchDetectors {
			b.Run(fmt.Sprintf("%s/%s", w.Name, det), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					var d core.Detector
					if det != "base" {
						var err error
						d, err = core.New(det, core.Config{Threads: 32, Vars: 1 << 10, Locks: 64})
						if err != nil {
							b.Fatal(err)
						}
					}
					rt := rtsim.New(d)
					w.Run(rt, w.TestSize)
					if d != nil && len(d.Reports()) != 0 {
						b.Fatalf("race reported on race-free workload %s", w.Name)
					}
				}
			})
		}
	}
}

// BenchmarkFigure1 replays the Fig. 1 example (plus its race) through the
// specification interpreter.
func BenchmarkFigure1(b *testing.B) {
	tr := trace.Trace{
		trace.ForkOp(0, 1),
		trace.Acq(0, 0), trace.Wr(0, 0), trace.Rel(0, 0),
		trace.Acq(1, 0), trace.Rd(1, 0), trace.Rel(1, 0),
		trace.Rd(0, 0),
		trace.Wr(0, 0), // the Fig. 1 race
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := spec.Run(spec.VerifiedFT, tr)
		if res.RaceAt != len(tr)-1 {
			b.Fatal("Fig. 1 race not detected at the final write")
		}
	}
}

// BenchmarkRuleFrequency regenerates the §5 rule-mix numbers (quick sizes).
func BenchmarkRuleFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := stats.CollectSuite(true)
		if err != nil {
			b.Fatal(err)
		}
		if s.FastPathPercent() < 50 {
			b.Fatalf("fast-path share %.1f%% implausibly low", s.FastPathPercent())
		}
	}
}

// BenchmarkWriteSharedThrash is the E5 ablation: a variable oscillating
// between read-shared reads and writes. The original FastTrack [Write
// Shared] rule resets R to ⊥e, so every post-write read re-runs the Share
// transition ("thrash", §3); VerifiedFT keeps R = Shared and answers those
// reads with the O(1) shared fast path.
func BenchmarkWriteSharedThrash(b *testing.B) {
	mkTrace := func(rounds int) trace.Trace {
		tr := trace.Trace{trace.ForkOp(0, 1)}
		for r := 0; r < rounds; r++ {
			// Both threads read x under no ordering conflict... the reads
			// must be concurrent to keep x Shared, then an ordered write.
			tr = append(tr,
				trace.Rd(0, 0),
				trace.Acq(1, 0), trace.Rd(1, 0), trace.Rel(1, 0),
				// Thread 0 synchronizes with 1 through the lock, then
				// writes: the write is ordered after both reads.
				trace.Acq(0, 0), trace.Wr(0, 0), trace.Rel(0, 0),
				trace.Acq(1, 0), trace.Rel(1, 0),
			)
		}
		return tr
	}
	tr := mkTrace(200)
	trace.MustValidate(tr)
	for _, flavor := range []spec.Flavor{spec.VerifiedFT, spec.FastTrackOrig} {
		flavor := flavor
		b.Run(flavor.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if res := spec.Run(flavor, tr); res.RaceAt != -1 {
					b.Fatalf("thrash trace raced: %v", res.Err)
				}
			}
		})
	}
}

// BenchmarkJoinIncrement is the E6 ablation: a fork/join-heavy trace under
// both [Join] rules. The dropped increment is about simplifying the
// synchronization discipline, not speed, so the interesting output is that
// the two arms are equivalent in verdicts and nearly identical in time.
func BenchmarkJoinIncrement(b *testing.B) {
	// A fork/join ladder: fork u, u works, join u, read u's data.
	var tr trace.Trace
	next := epoch.Tid(1)
	for round := 0; round < 100; round++ {
		u := next
		next++
		tr = append(tr,
			trace.ForkOp(0, u),
			trace.Wr(u, trace.Var(round%8)),
			trace.JoinOp(0, u),
			trace.Rd(0, trace.Var(round%8)),
		)
	}
	trace.MustValidate(tr)
	for _, flavor := range []spec.Flavor{spec.VerifiedFT, spec.FastTrackOrig} {
		flavor := flavor
		b.Run(flavor.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if res := spec.Run(flavor, tr); res.RaceAt != -1 {
					b.Fatalf("join ladder raced: %v", res.Err)
				}
			}
		})
	}
}

// BenchmarkFastPathLatency measures the per-access cost of each lock-free
// rule on each detector and clock representation — the microscopic
// version of Table 1's story. Allocations are reported: the fast paths
// must show 0 allocs/op for either representation (pinned by
// TestFastPathZeroAllocs in internal/core).
func BenchmarkFastPathLatency(b *testing.B) {
	for _, impl := range []vc.Impl{vc.ImplDense, vc.ImplTree} {
		impl := impl
		cfg := core.DefaultConfig()
		cfg.ClockImpl = impl
		for _, det := range []string{"vft-v1", "vft-v1.5", "vft-v2", "ft-mutex", "ft-cas", "djit"} {
			det := det
			b.Run(fmt.Sprintf("ReadSameEpoch/%s/%s", det, impl), func(b *testing.B) {
				d, err := core.New(det, cfg)
				if err != nil {
					b.Fatal(err)
				}
				d.Read(0, 1) // prime: R = 0@1
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					d.Read(0, 1)
				}
			})
			b.Run(fmt.Sprintf("WriteSameEpoch/%s/%s", det, impl), func(b *testing.B) {
				d, err := core.New(det, cfg)
				if err != nil {
					b.Fatal(err)
				}
				d.Write(0, 1)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					d.Write(0, 1)
				}
			})
			b.Run(fmt.Sprintf("ReadSharedSameEpoch/%s/%s", det, impl), func(b *testing.B) {
				d, err := core.New(det, cfg)
				if err != nil {
					b.Fatal(err)
				}
				// Drive x into Shared: reads by two concurrent threads.
				d.Fork(0, 1)
				d.Read(0, 1)
				d.Read(1, 1)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					d.Read(1, 1)
				}
			})
			b.Run(fmt.Sprintf("ReacquireJoin/%s/%s", det, impl), func(b *testing.B) {
				d, err := core.New(det, cfg)
				if err != nil {
					b.Fatal(err)
				}
				// Steady-state lock cycle by one thread: the acquire's join
				// argument is entirely covered, the release's snapshot is
				// reused — the shape the clock layer optimizes.
				d.Acquire(0, 3)
				d.Release(0, 3)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					d.Acquire(0, 3)
					d.Release(0, 3)
				}
			})
		}
	}
}

// BenchmarkReadSharedScaling runs N goroutines hammering one read-shared
// variable — the §5 pattern where v1/v1.5 serialize on the variable lock
// while v2 scales. The per-op numbers across detectors are the crossover
// Table 1 shows on sparse and sunflow.
func BenchmarkReadSharedScaling(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	if workers < 2 {
		// With one worker the variable never leaves the exclusive state
		// and the bench would silently measure [Read Same Epoch]; two
		// goroutines time-slicing still exercise the Shared fast path.
		workers = 2
	}
	for _, det := range []string{"vft-v1", "vft-v1.5", "vft-v2", "ft-mutex", "ft-cas"} {
		det := det
		b.Run(det, func(b *testing.B) {
			d, err := core.New(det, core.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			// Share the variable among all workers first.
			for w := 0; w < workers; w++ {
				d.Fork(0, epoch.Tid(w+1))
			}
			for w := 0; w < workers; w++ {
				d.Read(epoch.Tid(w+1), 1)
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / workers
			for w := 0; w < workers; w++ {
				tid := epoch.Tid(w + 1)
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						d.Read(tid, 1)
					}
				}()
			}
			wg.Wait()
			if len(d.Reports()) != 0 {
				b.Fatal("false positive on read-shared benchmark")
			}
		})
	}
}

// BenchmarkCheckTrace measures the end-to-end public API on generated
// traces.
func BenchmarkCheckTrace(b *testing.B) {
	tr := verifiedft.Trace{
		verifiedft.Fork(0, 1),
		verifiedft.Acquire(0, 0), verifiedft.Write(0, 0), verifiedft.Release(0, 0),
		verifiedft.Acquire(1, 0), verifiedft.Read(1, 0), verifiedft.Release(1, 0),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := verifiedft.CheckTrace(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkElision measures the E10 extension: a RedCard/BigFoot-style
// redundant-check filter over vft-v2. Dynamic elision pays exactly where
// the elided check is expensive (locked slow paths) and costs where the
// fast path was already one atomic load — the honest trade-off recorded in
// EXPERIMENTS.md; static systems like BigFoot avoid the dynamic cost.
func BenchmarkElision(b *testing.B) {
	for _, name := range []string{"montecarlo", "sparse", "h2"} {
		w, err := workloads.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, elided := range []bool{false, true} {
			label := name + "/plain"
			if elided {
				label = name + "/elided"
			}
			b.Run(label, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					inner, err := core.New("vft-v2", core.Config{Threads: 32, Vars: 1 << 10, Locks: 64})
					if err != nil {
						b.Fatal(err)
					}
					var d core.Detector = inner
					if elided {
						el, err := elide.New(inner)
						if err != nil {
							b.Fatal(err)
						}
						d = el
					}
					rt := rtsim.New(d)
					w.Run(rt, w.TestSize)
					if len(d.Reports()) != 0 {
						b.Fatal("unexpected race")
					}
				}
			})
		}
	}
}

// BenchmarkArrayShadow measures the [58]-style compression extension on a
// sweep-heavy access pattern (crypt's shape): per-op time and — via
// ReportAllocs — the shadow-state allocation the compressed mode avoids.
func BenchmarkArrayShadow(b *testing.B) {
	const n = 4096
	const sweeps = 8
	b.Run("compressed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// The compressed id sits below the element ids so the dense
			// shadow table materializes exactly one VarState until (unless)
			// the array expands.
			d := core.NewV2(core.Config{Threads: 8, Vars: 1, Locks: 8})
			arr := arrayshadow.New(d, 0, 1, n)
			for s := 0; s < sweeps; s++ {
				for j := 0; j < n; j++ {
					if s == 0 {
						arr.Write(0, j)
					} else {
						arr.Read(0, j)
					}
				}
			}
			if arr.Expanded() {
				b.Fatal("sweeps should stay compressed")
			}
		}
	})
	b.Run("fine-grained", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d := core.NewV2(core.Config{Threads: 8, Vars: n, Locks: 8})
			for s := 0; s < sweeps; s++ {
				for j := 0; j < n; j++ {
					if s == 0 {
						d.Write(0, trace.Var(j))
					} else {
						d.Read(0, trace.Var(j))
					}
				}
			}
		}
	})
}
