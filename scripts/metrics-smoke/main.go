// Command metrics-smoke exercises the live observability surface end to
// end: it builds vft-bench, runs a one-iteration quick bench with
// -metrics-addr, scrapes /metrics and /debug/vars over HTTP while the
// process lingers, and verifies the scraped snapshot carries the frozen
// per-cell detector counters plus a sane fast-path split. It is a Go
// program rather than a curl script so `make metrics-smoke` works on any
// machine with just the toolchain.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"time"

	"repro/internal/obs"
)

func main() { os.Exit(run()) }

func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "metrics-smoke: FAIL: "+format+"\n", args...)
	return 1
}

func run() int {
	tmp, err := os.MkdirTemp("", "metrics-smoke")
	if err != nil {
		return fail("%v", err)
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "vft-bench")
	build := exec.Command("go", "build", "-o", bin, "./cmd/vft-bench")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fail("build: %v", err)
	}

	jsonPath := filepath.Join(tmp, "bench.json")
	bench := exec.Command(bin,
		"-quick", "-iters", "1", "-warmup", "0",
		"-programs", "montecarlo", "-detectors", "vft-v2,ft-cas",
		"-json", jsonPath,
		"-metrics-addr", "127.0.0.1:0",
		"-metrics-linger", "60s")
	bench.Stdout = os.Stdout
	stderr, err := bench.StderrPipe()
	if err != nil {
		return fail("%v", err)
	}
	if err := bench.Start(); err != nil {
		return fail("start: %v", err)
	}
	defer func() {
		bench.Process.Kill()
		bench.Wait()
	}()

	// The first stderr line announces the bound address.
	urlRe := regexp.MustCompile(`http://[^/\s]+/metrics`)
	var base string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		if m := urlRe.FindString(line); m != "" {
			base = m[:len(m)-len("/metrics")]
			break
		}
	}
	if base == "" {
		return fail("no metrics address announced on stderr")
	}
	go func() { // keep draining so the child never blocks on stderr
		for sc.Scan() {
			fmt.Fprintln(os.Stderr, sc.Text())
		}
	}()

	// Poll /metrics until the bench has frozen the montecarlo/vft-v2 cell
	// into the registry (the endpoint is live from the start; the frozen
	// source appears when that cell's metrics pass completes).
	cell := "montecarlo.vft-v2.detector."
	var snap obs.Snapshot
	deadline := time.Now().Add(120 * time.Second)
	for {
		if time.Now().After(deadline) {
			return fail("timed out waiting for %sreads.total at %s/metrics", cell, base)
		}
		snap, err = scrape(base + "/metrics")
		if err == nil && snap.Counters[cell+"reads.total"] > 0 {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}

	reads := snap.Counters[cell+"reads.total"]
	fast := snap.Counters[cell+"reads.fast"]
	slow := snap.Counters[cell+"reads.slow"]
	if fast+slow != reads {
		return fail("fast (%d) + slow (%d) != total (%d)", fast, slow, reads)
	}
	if snap.Gauges["bench.cells_done"] == 0 {
		return fail("bench.cells_done gauge missing: %v", snap.Gauges)
	}

	// The same registry must be visible through the standard expvar dump.
	resp, err := http.Get(base + "/debug/vars")
	if err != nil {
		return fail("expvar: %v", err)
	}
	var vars map[string]json.RawMessage
	err = json.NewDecoder(resp.Body).Decode(&vars)
	resp.Body.Close()
	if err != nil {
		return fail("expvar decode: %v", err)
	}
	if _, ok := vars["vft-bench"]; !ok {
		return fail("/debug/vars has no vft-bench variable")
	}

	fmt.Printf("metrics-smoke: OK — %s served %d counters; montecarlo/vft-v2: %d reads, %.1f%% fast\n",
		base, len(snap.Counters), reads, 100*float64(fast)/float64(reads))
	return 0
}

func scrape(url string) (obs.Snapshot, error) {
	snap := obs.NewSnapshot()
	resp, err := http.Get(url)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	return snap, json.NewDecoder(resp.Body).Decode(&snap)
}
