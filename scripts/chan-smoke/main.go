// Command chan-smoke is the end-to-end exercise of trace format v2's
// Go-synchronization kinds. Two channel-heavy traces — a generated
// gosync mix and a deterministic "channel mill" with hundreds of
// buffered and unbuffered sends — each round-trip text → binary-v2 →
// decoded, get checked with `vft-run -parallel` the way a consumer
// would, and get uploaded as the same binary-v2 bytes to a real
// vft-server with the chancap parameter; both report lists must diff
// clean against an offline CheckTrace of the same trace. It also pins
// the version fence: a channel-bearing trace must refuse to encode when
// pinned to format v1. It is a Go program rather than a shell script so
// `make chan-smoke` works on any machine with just the toolchain.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sort"
	"strings"

	verifiedft "repro"
	"repro/internal/ingest"
	"repro/internal/trace"
)

const seed = 20260808

func main() { os.Exit(run()) }

func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "chan-smoke: FAIL: "+format+"\n", args...)
	return 1
}

// capsFlag renders a channel-capacity map as the -chancaps / chancap
// grammar: comma-separated id:cap pairs in id order.
func capsFlag(caps map[trace.Lock]int) string {
	ids := make([]int, 0, len(caps))
	for c := range caps {
		ids = append(ids, int(c))
	}
	sort.Ints(ids)
	parts := make([]string, 0, len(ids))
	for _, c := range ids {
		parts = append(parts, fmt.Sprintf("%d:%d", c, caps[trace.Lock(c)]))
	}
	return strings.Join(parts, ",")
}

// chanMill builds a deterministic send-heavy workload: rounds of
// buffered slot-ring traffic on channel 0 (capacity 2), an unbuffered
// rendezvous on channel 1, atomics and a once, then a close and a
// drained zero-value receive. Each round's publish is ordered WITHIN
// the round by the slot edge, but nothing orders thread 1 back before
// thread 0's next round, so the write/read pair on variable 0 races
// once per round — a deterministic stream of reports that exercises
// the dedup-and-diff legs — and the planted thread-1/thread-2 pair on
// variable 9 races exactly once.
func chanMill(rounds int) trace.Trace {
	tr := trace.Trace{trace.ForkOp(0, 1), trace.ForkOp(0, 2)}
	for i := 0; i < rounds; i++ {
		tr = append(tr,
			trace.Wr(0, 0), // published below via channel 0
			trace.SendOp(0, 0), trace.SendOp(0, 0),
			trace.RecvOp(1, 0),
			trace.Rd(1, 0), // ordered by the slot edge (this round only)
			trace.RecvOp(1, 0),
			trace.SendOp(0, 1), // unbuffered: blocks thread 0...
			trace.RecvOp(2, 1), // ...until the rendezvous completes
			trace.AStore(1, 3),
			trace.ALoad(2, 3),
		)
		if i == 0 {
			tr = append(tr, trace.OnceOp(1, 2), trace.OnceOp(2, 2))
		}
		if i == rounds/2 {
			tr = append(tr, trace.Wr(1, 9), trace.Wr(2, 9)) // the race
		}
	}
	tr = append(tr,
		trace.CloseOp(0, 0),
		trace.RecvOp(2, 0), // zero-value receive after the drain
		trace.JoinOp(0, 1), trace.JoinOp(0, 2),
	)
	return tr
}

type smokeCase struct {
	name     string
	tr       trace.Trace
	ext      *trace.Extensions
	minSends int
}

func run() int {
	// A channel-heavy generated mix: more channels and channel traffic
	// than the default gosync configuration.
	cfg := trace.GoSyncGenConfig()
	cfg.Ops = 20_000
	cfg.Threads = 6
	cfg.Chans = 4
	cfg.ChanWeight = 8
	generated := smokeCase{
		name:     "generated",
		tr:       trace.Generate(rand.New(rand.NewSource(seed)), cfg),
		ext:      cfg.Extensions(),
		minSends: 1,
	}
	mill := smokeCase{
		name:     "chan-mill",
		tr:       chanMill(400),
		ext:      &trace.Extensions{ChanCapacity: map[trace.Lock]int{0: 2, 1: 0}},
		minSends: 1000,
	}

	runBin, cleanup, err := buildVftRun()
	if err != nil {
		return fail("build vft-run: %v", err)
	}
	defer cleanup()

	for _, sc := range []smokeCase{generated, mill} {
		if code := smoke(sc, runBin); code != 0 {
			return code
		}
	}
	return 0
}

func buildVftRun() (string, func(), error) {
	tmp, err := os.MkdirTemp("", "chan-smoke")
	if err != nil {
		return "", nil, err
	}
	bin := filepath.Join(tmp, "vft-run")
	build := exec.Command("go", "build", "-o", bin, "./cmd/vft-run")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		os.RemoveAll(tmp)
		return "", nil, err
	}
	return bin, func() { os.RemoveAll(tmp) }, nil
}

func smoke(sc smokeCase, runBin string) int {
	tr, ext := sc.tr, sc.ext
	if err := trace.ValidateExt(tr, ext); err != nil {
		return fail("%s: trace infeasible: %v", sc.name, err)
	}
	kinds := map[trace.Kind]int{}
	for _, op := range tr {
		kinds[op.Kind]++
	}
	for _, k := range []trace.Kind{trace.ChanSend, trace.ChanRecv, trace.ChanClose, trace.AtomicLoad, trace.AtomicStore, trace.AtomicRMW, trace.OnceDo} {
		if kinds[k] == 0 && !(sc.name == "chan-mill" && k == trace.AtomicRMW) {
			return fail("%s: no %v ops in %d", sc.name, k, len(tr))
		}
	}
	if kinds[trace.ChanSend] < sc.minSends {
		return fail("%s: only %d sends, want >= %d (not channel-heavy)",
			sc.name, kinds[trace.ChanSend], sc.minSends)
	}

	// Leg 1: text → binary-v2 round trip.
	var text bytes.Buffer
	if err := trace.Encode(&text, tr); err != nil {
		return fail("%s: text encode: %v", sc.name, err)
	}
	fromText, err := trace.Decode(bytes.NewReader(text.Bytes()))
	if err != nil {
		return fail("%s: text decode: %v", sc.name, err)
	}
	if !reflect.DeepEqual(tr, fromText) {
		return fail("%s: text round trip altered the trace", sc.name)
	}
	var bin bytes.Buffer
	if err := trace.EncodeBinary(&bin, fromText); err != nil {
		return fail("%s: binary encode: %v", sc.name, err)
	}
	if !bytes.HasPrefix(bin.Bytes(), []byte("VFTb\x02")) {
		return fail("%s: channel trace must encode as format v2, header %q", sc.name, bin.Bytes()[:5])
	}
	dec := trace.NewBinaryDecoder(bytes.NewReader(bin.Bytes()))
	fromBin, err := trace.ReadAll(dec)
	if err != nil {
		return fail("%s: binary decode: %v", sc.name, err)
	}
	if dec.Version() != trace.BinaryVersion2 || !reflect.DeepEqual(tr, fromBin) {
		return fail("%s: binary-v2 round trip altered the trace (version %d)", sc.name, dec.Version())
	}
	// The version fence: the same trace must refuse a v1 pin.
	if err := trace.EncodeBinaryVersion(&bytes.Buffer{}, tr, trace.BinaryVersion1); err == nil {
		return fail("%s: channel trace encoded under a v1 pin", sc.name)
	}

	// Offline truth, sequential and parallel.
	caps := map[verifiedft.LockID]int{}
	for c, n := range ext.ChanCapacity {
		caps[c] = n
	}
	offline, err := verifiedft.CheckTrace(tr,
		verifiedft.WithVariant(verifiedft.V2), verifiedft.WithChanCapacities(caps))
	if err != nil {
		return fail("%s: offline check: %v", sc.name, err)
	}
	par, err := verifiedft.CheckTrace(tr,
		verifiedft.WithVariant(verifiedft.V2), verifiedft.WithChanCapacities(caps),
		verifiedft.WithParallelism(4))
	if err != nil {
		return fail("%s: parallel check: %v", sc.name, err)
	}
	if !reflect.DeepEqual(offline, par) {
		return fail("%s: WithParallelism(4) reports diverge from sequential", sc.name)
	}
	if sc.name == "chan-mill" && len(offline) == 0 {
		return fail("chan-mill: the planted write-write race went undetected")
	}

	// Leg 2: vft-run -parallel over the binary-v2 file, diffed against
	// the offline reports (vft-run prints the first report per variable).
	tmp, err := os.MkdirTemp("", "chan-smoke-trace")
	if err != nil {
		return fail("%v", err)
	}
	defer os.RemoveAll(tmp)
	tracePath := filepath.Join(tmp, sc.name+".bin")
	if err := os.WriteFile(tracePath, bin.Bytes(), 0o644); err != nil {
		return fail("%v", err)
	}
	cmd := exec.Command(runBin, "-parallel", "2", "-chancaps", capsFlag(ext.ChanCapacity), tracePath)
	var stdout, stderrBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderrBuf
	err = cmd.Run()
	wantExit := 0
	if len(offline) > 0 {
		wantExit = 1
	}
	if code := cmd.ProcessState.ExitCode(); code != wantExit {
		return fail("%s: vft-run: exit %d (want %d): %v\n%s", sc.name, code, wantExit, err, stderrBuf.String())
	}
	var wantLines []string
	seen := map[verifiedft.VarID]bool{}
	for _, r := range offline {
		if !seen[r.X] {
			seen[r.X] = true
			wantLines = append(wantLines, r.String())
		}
	}
	gotLines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(gotLines) == 1 && gotLines[0] == "" {
		gotLines = nil
	}
	if len(offline) == 0 {
		// Clean traces print a "no races detected" banner instead.
		if len(gotLines) != 1 || !strings.Contains(gotLines[0], "no races detected") {
			return fail("%s: vft-run on a clean trace printed %q", sc.name, gotLines)
		}
	} else if !reflect.DeepEqual(wantLines, gotLines) {
		return fail("%s: vft-run reports diverge from offline CheckTrace:\n got %q\nwant %q",
			sc.name, gotLines, wantLines)
	}

	// Leg 3: upload the identical binary-v2 bytes to a real vft-server
	// with the chancap parameter; the returned reports must be
	// byte-identical to the offline truth.
	srv := ingest.New(ingest.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := fmt.Sprintf("%s/v1/traces?tenant=chan-smoke&variant=%s&chancap=%s",
		ts.URL, verifiedft.V2, capsFlag(ext.ChanCapacity))
	resp, err := ts.Client().Post(url, "application/octet-stream", bytes.NewReader(bin.Bytes()))
	if err != nil {
		return fail("%s: upload: %v", sc.name, err)
	}
	defer resp.Body.Close()
	var res struct {
		Ops     int             `json:"ops"`
		Reports json.RawMessage `json:"reports"`
		Error   string          `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return fail("%s: upload response: %v", sc.name, err)
	}
	if resp.StatusCode != 200 {
		return fail("%s: upload: %d %s", sc.name, resp.StatusCode, res.Error)
	}
	if res.Ops != len(tr) {
		return fail("%s: server checked %d ops, want %d", sc.name, res.Ops, len(tr))
	}
	wantJSON, err := json.Marshal(ingest.FromCoreAll(offline))
	if err != nil {
		return fail("%v", err)
	}
	var got, want bytes.Buffer
	if err := json.Compact(&got, res.Reports); err != nil {
		return fail("%v", err)
	}
	if err := json.Compact(&want, wantJSON); err != nil {
		return fail("%v", err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		return fail("%s: server reports diverge from offline CheckTrace:\n got %s\nwant %s",
			sc.name, got.Bytes(), want.Bytes())
	}

	fmt.Printf("chan-smoke: OK: %s: %d ops (%d sends, %d recvs, %d closes, %d atomics, %d onces), %d report(s), text=binary-v2=vft-run=vft-server=offline\n",
		sc.name, len(tr), kinds[trace.ChanSend], kinds[trace.ChanRecv], kinds[trace.ChanClose],
		kinds[trace.AtomicLoad]+kinds[trace.AtomicStore]+kinds[trace.AtomicRMW], kinds[trace.OnceDo],
		len(offline))
	return 0
}
