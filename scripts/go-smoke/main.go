// Command go-smoke drives the vft-go front-end over the corpus: every
// program is instrumented twice (elision on and off), built, executed
// with trace capture, and checked; the two runs' canonical reports must
// be byte-identical, racy programs must name their racy variables and
// clean programs must be silent. The expectation table lives in
// goinstr.CorpusExpectations, shared with the package's end-to-end test.
//
// Usage:
//
//	go run ./scripts/go-smoke [-corpus dir] [-v] [program...]
//
// With no arguments every corpus program runs; naming programs restricts
// the sweep (handy when debugging the rewriter).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/goinstr"
)

func main() {
	corpus := flag.String("corpus", "internal/goinstr/testdata/corpus", "corpus root")
	verbose := flag.Bool("v", false, "per-program detail")
	flag.Parse()

	names := flag.Args()
	if len(names) == 0 {
		names = goinstr.CorpusNames()
	}

	failed := 0
	elidedSomewhere := 0
	for _, name := range names {
		out, err := goinstr.CheckCorpusProgram(*corpus, name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %v\n", err)
			failed++
			continue
		}
		if out.Stats.Elided > 0 {
			elidedSomewhere++
		}
		if *verbose {
			fmt.Printf("ok   %-24s sites=%d elided=%d (%.0f%%) events=%d/%d reports=%d\n",
				name, out.Stats.Sites, out.Stats.Elided, 100*out.Stats.ElisionRate(),
				out.Events, out.EventsOff, len(out.Lines))
		} else {
			fmt.Printf("ok   %s\n", name)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "go-smoke: %d/%d programs failed\n", failed, len(names))
		os.Exit(1)
	}
	fmt.Printf("go-smoke: %d programs ok, elision fired on %d\n", len(names), elidedSomewhere)
	if elidedSomewhere*2 < len(names) {
		fmt.Fprintln(os.Stderr, "go-smoke: elision fired on fewer than half the corpus")
		os.Exit(1)
	}
}
