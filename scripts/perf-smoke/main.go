// Command perf-smoke exercises the clock layer the way CI wants it
// exercised: run the fast-path latency micro cells and the
// montecarlo/pmd offline checking arms (EXPERIMENTS.md E20) at quick
// sizes under both clock representations, fail hard if any arm's report
// list diverges from the dense sequential baseline, and log — without
// gating on — the perf numbers, so a run's timing lives in the CI log
// while correctness is the only failure condition. A generated racy
// trace with heavy lock traffic rides along so the tree representation's
// memo machinery sees real invalidation churn, not just the race-free
// suite. It is a Go program rather than a shell script so it works on
// any machine with just the toolchain.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"

	verifiedft "repro"
	"repro/internal/harness"
	"repro/internal/trace"
)

const seed = 20260808

func main() { os.Exit(run()) }

func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "perf-smoke: FAIL: "+format+"\n", args...)
	return 1
}

func run() int {
	// Arm 1: the E20 table at quick sizes — micro latency/allocs per
	// (impl, detector) plus the montecarlo/pmd offline arms with the
	// built-in divergence cross-check.
	opts := harness.DefaultFastPathOptions()
	opts.Quick = true
	opts.Warmup = 1
	opts.Iters = 2
	table, err := harness.RunFastPath(opts)
	if err != nil {
		return fail("fastpath harness: %v", err)
	}
	if err := table.Format(os.Stdout); err != nil {
		return fail("format: %v", err)
	}
	if table.Divergent() {
		return fail("report lists diverged between clock representations")
	}
	for _, impl := range opts.Impls {
		for _, det := range opts.Detectors {
			c := table.Micro[impl][det]
			if c.ReadAllocs != 0 || c.WriteAllocs != 0 {
				return fail("%s/%s: same-epoch fast path allocates (read %g, write %g allocs/op)",
					det, impl, c.ReadAllocs, c.WriteAllocs)
			}
		}
	}

	// Arm 2: a racy, sync-heavy generated trace through every variant
	// under both representations, sequentially and sharded — the
	// byte-identity contract on inputs that actually produce reports.
	cfg := trace.DefaultGenConfig()
	cfg.Ops = 50_000
	cfg.Threads = 8
	cfg.Vars = 32
	cfg.Locks = 8
	tr := trace.Generate(rand.New(rand.NewSource(seed)), cfg)
	for _, variant := range verifiedft.Variants() {
		want, err := verifiedft.CheckTrace(tr, verifiedft.WithVariant(variant))
		if err != nil {
			return fail("%s baseline: %v", variant, err)
		}
		for _, impl := range []string{"dense", "tree"} {
			for _, workers := range []int{1, 4} {
				got, err := verifiedft.CheckTrace(tr,
					verifiedft.WithVariant(variant),
					verifiedft.WithClockImpl(impl),
					verifiedft.WithParallelism(workers))
				if err != nil {
					return fail("%s/%s w=%d: %v", variant, impl, workers, err)
				}
				if !reflect.DeepEqual(want, got) {
					return fail("%s: %s w=%d diverged from dense sequential: %d vs %d reports",
						variant, impl, workers, len(got), len(want))
				}
			}
		}
		fmt.Printf("perf-smoke: %-9s %6d ops → %5d reports, dense ≡ tree, sequential ≡ sharded ✓\n",
			variant, len(tr), len(want))
	}

	fmt.Println("perf-smoke: OK — clock representations agree everywhere; perf numbers above are logged, not gated")
	return 0
}
