// Command server-smoke is the end-to-end exercise of the vft-server
// ingestion service the way CI wants it exercised: boot the real service
// on an ephemeral port, stream the same generated trace in all three wire
// encodings (text, binary, gzipped binary) as concurrent tenants, require
// every returned report list to be byte-identical to an offline
// CheckTrace of the same trace, provoke a saturation 429 with a stalled
// upload, then drain, persist, and reboot from the state file to confirm
// no accepted upload's reports were lost. It is a Go program rather than
// a shell script so it works on any machine with just the toolchain.
package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	verifiedft "repro"
	"repro/internal/ingest"
	"repro/internal/trace"
)

const seed = 20260807

func main() { os.Exit(run()) }

func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "server-smoke: FAIL: "+format+"\n", args...)
	return 1
}

func run() int {
	cfg := trace.DefaultGenConfig()
	cfg.Ops = 50_000
	cfg.Threads = 8
	cfg.Vars = 64
	cfg.Locks = 4
	tr := trace.Generate(rand.New(rand.NewSource(seed)), cfg)

	// Offline truth, once.
	offline, err := verifiedft.CheckTrace(tr, verifiedft.WithVariant(verifiedft.V2))
	if err != nil {
		return fail("offline check: %v", err)
	}
	wantJSON, err := json.Marshal(ingest.FromCoreAll(offline))
	if err != nil {
		return fail("%v", err)
	}

	// The three wire encodings of the same trace.
	bodies := map[string][]byte{}
	var text, bin, gz bytes.Buffer
	if err := trace.Encode(&text, tr); err != nil {
		return fail("%v", err)
	}
	if err := trace.EncodeBinary(&bin, tr); err != nil {
		return fail("%v", err)
	}
	zw := gzip.NewWriter(&gz)
	if err := trace.EncodeBinary(zw, tr); err != nil {
		return fail("%v", err)
	}
	zw.Close()
	bodies["text"], bodies["binary"], bodies["gzip"] = text.Bytes(), bin.Bytes(), gz.Bytes()

	srv := ingest.New(ingest.Config{MaxInFlight: 4, QueueWait: time.Minute})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Concurrent tenants, one per encoding, each asserting byte parity.
	var wg sync.WaitGroup
	errs := make(chan error, len(bodies))
	for enc, body := range bodies {
		wg.Add(1)
		go func(enc string, body []byte) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/traces?tenant="+enc+"&variant=vft-v2",
				"application/octet-stream", bytes.NewReader(body))
			if err != nil {
				errs <- fmt.Errorf("%s: %v", enc, err)
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("%s: status %d: %s", enc, resp.StatusCode, raw)
				return
			}
			var res struct {
				Races   int             `json:"races"`
				Reports json.RawMessage `json:"reports"`
			}
			if err := json.Unmarshal(raw, &res); err != nil {
				errs <- fmt.Errorf("%s: %v", enc, err)
				return
			}
			var compact bytes.Buffer
			json.Compact(&compact, res.Reports)
			if !bytes.Equal(compact.Bytes(), wantJSON) {
				errs <- fmt.Errorf("%s: reports diverge from offline CheckTrace (%d vs %d races)",
					enc, res.Races, len(offline))
				return
			}
			fmt.Printf("server-smoke: %-6s upload %6d ops → %4d reports ≡ offline CheckTrace ✓\n",
				enc, len(tr), res.Races)
		}(enc, body)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return fail("%v", err)
	}

	// Saturation: a tiny server with one slot held by a stalled body must
	// answer 429 with Retry-After.
	tiny := ingest.New(ingest.Config{MaxInFlight: 1, RetryAfter: 2 * time.Second})
	tts := httptest.NewServer(tiny.Handler())
	defer tts.Close()
	pr, pw := io.Pipe()
	stall := make(chan struct{})
	go func() {
		io.WriteString(pw, "fork 0 1\n")
		<-stall
		io.WriteString(pw, "join 0 1\n")
		pw.Close()
	}()
	go http.Post(tts.URL+"/v1/traces?tenant=slow", "application/octet-stream", pr)
	for i := 0; tiny.Registry().Snapshot().Gauges["ingest.inflight"] != 1; i++ {
		if i > 5000 {
			return fail("stalled upload never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Post(tts.URL+"/v1/traces?tenant=fast", "application/octet-stream",
		bytes.NewReader(bodies["binary"]))
	if err != nil {
		return fail("saturation probe: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") != "2" {
		return fail("saturated POST: status %d Retry-After %q, want 429/\"2\"",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	close(stall)
	fmt.Println("server-smoke: saturation answered 429 + Retry-After ✓")

	// Drain, persist, reboot: every tenant's aggregated view must survive.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return fail("drain: %v", err)
	}
	var state bytes.Buffer
	if err := srv.SaveState(&state); err != nil {
		return fail("save state: %v", err)
	}
	srv2 := ingest.New(ingest.Config{})
	if err := srv2.LoadState(bytes.NewReader(state.Bytes())); err != nil {
		return fail("load state: %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	for enc := range bodies {
		before, err := fetch(ts.URL + "/v1/reports?tenant=" + enc)
		if err != nil {
			return fail("%v", err)
		}
		after, err := fetch(ts2.URL + "/v1/reports?tenant=" + enc)
		if err != nil {
			return fail("%v", err)
		}
		if !bytes.Equal(before, after) {
			return fail("tenant %s reports lost across drain/restart", enc)
		}
	}
	fmt.Println("server-smoke: drain → save → restart preserved every tenant's reports ✓")
	fmt.Println("server-smoke: OK — multi-tenant ingestion matches offline checking end to end")
	return 0
}

func fetch(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %d %s", url, resp.StatusCode, b)
	}
	return b, nil
}
