// Command sample-smoke checks the sampling tier's headline guarantee the
// way CI wants it checked: a racy ~100k-operation generated trace plus
// the whole conformance corpus, swept across sampling rates, requiring at
// every rate that the sampled reports equal the precise reports filtered
// to the sampled variables (re-numbered from zero) — which at rate 1.0
// collapses to byte-identity with the precise tier — both sequentially
// and through the sharded parallel checker. `make sample-smoke` runs it
// under the Go race detector, so the lock-free decision table's
// first-touch races are exercised at a realistic op count. It is a Go
// program rather than a shell script so it works on any machine with just
// the toolchain.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"

	verifiedft "repro"
	"repro/internal/conformance"
	"repro/internal/sample"
	"repro/internal/trace"
)

const samplingSeed = 7

var rates = []float64{1, 0.5, 0.1, 0.01, 0}

func main() { os.Exit(run()) }

func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "sample-smoke: FAIL: "+format+"\n", args...)
	return 1
}

// filterSampled is the contract: the precise reports on sampled
// variables, re-numbered from zero.
func filterSampled(precise []verifiedft.Report, pol sample.Policy) []verifiedft.Report {
	var out []verifiedft.Report
	for _, r := range precise {
		if pol.Sampled(r.X) {
			r.Seq = len(out)
			out = append(out, r)
		}
	}
	return out
}

func sameReports(a, b []verifiedft.Report) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// checkOne verifies one (trace, rate) cell sequentially and sharded.
func checkOne(name string, tr verifiedft.Trace, precise []verifiedft.Report, rate float64) error {
	pol := sample.Policy{Rate: rate, Seed: samplingSeed}
	want := filterSampled(precise, pol)
	opts := []verifiedft.CheckOption{
		verifiedft.WithSampling(rate, verifiedft.WithSamplingSeed(samplingSeed)),
	}
	seq, err := verifiedft.CheckTrace(tr, opts...)
	if err != nil {
		return fmt.Errorf("%s rate %v sequential: %v", name, rate, err)
	}
	if !sameReports(want, seq) {
		return fmt.Errorf("%s rate %v: sequential sampled reports are not the filtered precise reports (%d vs %d)",
			name, rate, len(seq), len(want))
	}
	if rate == 1 && !sameReports(precise, seq) {
		return fmt.Errorf("%s: rate 1.0 diverged from the precise tier (%d vs %d reports)",
			name, len(seq), len(precise))
	}
	par, err := verifiedft.CheckTrace(tr, append(opts, verifiedft.WithParallelism(4))...)
	if err != nil {
		return fmt.Errorf("%s rate %v parallel: %v", name, rate, err)
	}
	if !sameReports(want, par) {
		return fmt.Errorf("%s rate %v: parallel(4) sampled reports are not the filtered precise reports (%d vs %d)",
			name, rate, len(par), len(want))
	}
	return nil
}

func run() int {
	cfg := trace.DefaultGenConfig()
	cfg.Ops = 100_000
	cfg.Threads = 8
	cfg.Vars = 256
	cfg.Locks = 8
	cfg.LockedFraction = 0 // no locking bias: plenty of races to filter
	gen := trace.Generate(rand.New(rand.NewSource(20260808)), cfg)

	traces := []struct {
		name string
		tr   verifiedft.Trace
	}{{"generated", gen}}
	for _, prog := range conformance.Programs() {
		tr, _, err := conformance.RunOne(prog, "pct", 1, nil)
		if err != nil {
			return fail("conformance %s: %v", prog.Name, err)
		}
		traces = append(traces, struct {
			name string
			tr   verifiedft.Trace
		}{prog.Name, tr})
	}

	for _, tc := range traces {
		precise, err := verifiedft.CheckTrace(tc.tr)
		if err != nil {
			return fail("%s precise: %v", tc.name, err)
		}
		for _, rate := range rates {
			if err := checkOne(tc.name, tc.tr, precise, rate); err != nil {
				return fail("%v", err)
			}
		}
		fmt.Printf("sample-smoke: %-12s %6d ops, %3d precise reports — all %d rates sound, rate 1.0 identical ✓\n",
			tc.name, len(tc.tr), len(precise), len(rates))
	}

	fmt.Println("sample-smoke: OK — every rate reported exactly the precise races on sampled variables")
	return 0
}
