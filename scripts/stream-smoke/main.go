// Command stream-smoke exercises the streaming ingestion path end to end
// the way a capture pipeline would: it builds vft-run, encodes a known-racy
// and a known-clean trace into the gzipped binary wire format, pipes each
// into `vft-run -` over stdin, and verifies the verdicts through the exit
// codes (1 race, 0 clean) — no file ever touches disk on the consumer side,
// and format detection must work on an unseekable pipe. It is a Go program
// rather than a shell script so `make stream-smoke` works on any machine
// with just the toolchain.
package main

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/trace"
)

func main() { os.Exit(run()) }

func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "stream-smoke: FAIL: "+format+"\n", args...)
	return 1
}

// gzBinary renders tr as the gzipped binary wire format.
func gzBinary(tr trace.Trace) ([]byte, error) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := trace.EncodeBinary(zw, tr); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func run() int {
	tmp, err := os.MkdirTemp("", "stream-smoke")
	if err != nil {
		return fail("%v", err)
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "vft-run")
	build := exec.Command("go", "build", "-o", bin, "./cmd/vft-run")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fail("build: %v", err)
	}

	racy := trace.Trace{
		trace.ForkOp(0, 1), trace.Wr(0, 0), trace.Wr(1, 0), trace.JoinOp(0, 1),
	}
	clean := trace.Trace{
		trace.ForkOp(0, 1),
		trace.Acq(1, 0), trace.Wr(1, 0), trace.Rel(1, 0),
		trace.JoinOp(0, 1),
		trace.Rd(0, 0),
	}

	cases := []struct {
		name     string
		tr       trace.Trace
		wantExit int
		wantOut  string
	}{
		{"racy", racy, 1, "race"},
		{"clean", clean, 0, "no races detected"},
	}
	for _, c := range cases {
		data, err := gzBinary(c.tr)
		if err != nil {
			return fail("%s: encode: %v", c.name, err)
		}
		var out bytes.Buffer
		cmd := exec.Command(bin, "-")
		cmd.Stdin = bytes.NewReader(data)
		cmd.Stdout, cmd.Stderr = &out, &out
		err = cmd.Run()
		exit := 0
		if ee, ok := err.(*exec.ExitError); ok {
			exit = ee.ExitCode()
		} else if err != nil {
			return fail("%s: %v", c.name, err)
		}
		if exit != c.wantExit {
			return fail("%s: exit %d, want %d\n%s", c.name, exit, c.wantExit, out.String())
		}
		if !strings.Contains(out.String(), c.wantOut) {
			return fail("%s: output lacks %q:\n%s", c.name, c.wantOut, out.String())
		}
		fmt.Printf("stream-smoke: %s trace over gzipped binary stdin → exit %d ✓\n", c.name, exit)
	}

	fmt.Println("stream-smoke: OK — vft-run consumed piped gzip binary traces with correct verdicts")
	return 0
}
