// Command par-smoke checks the parallel checker's headline guarantee the
// way CI wants it checked: generate a ~100k-operation feasible trace with
// plenty of races and sync traffic, check it sequentially and with
// WithParallelism(4), and require the two report lists to be exactly
// equal — same reports, same order, same Seq — for every detector
// variant. `make par-smoke` runs it under the Go race detector, so the
// prepass/worker handoff is exercised for data races at a realistic op
// count, not just at unit-test sizes. It is a Go program rather than a
// shell script so it works on any machine with just the toolchain.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"

	verifiedft "repro"
	"repro/internal/trace"
)

const seed = 20260806

func main() { os.Exit(run()) }

func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "par-smoke: FAIL: "+format+"\n", args...)
	return 1
}

func run() int {
	cfg := trace.DefaultGenConfig()
	cfg.Ops = 100_000
	cfg.Threads = 8
	cfg.Vars = 64
	cfg.Locks = 8
	cfg.LockedFraction = 0 // no locking bias: plenty of races to merge
	tr := trace.Generate(rand.New(rand.NewSource(seed)), cfg)

	for _, variant := range verifiedft.Variants() {
		want, err := verifiedft.CheckTrace(tr, verifiedft.WithVariant(variant))
		if err != nil {
			return fail("%s sequential: %v", variant, err)
		}
		got, err := verifiedft.CheckTrace(tr, verifiedft.WithVariant(variant),
			verifiedft.WithParallelism(4))
		if err != nil {
			return fail("%s parallel: %v", variant, err)
		}
		if !reflect.DeepEqual(want, got) {
			return fail("%s: parallel(4) diverged from sequential: %d vs %d reports",
				variant, len(got), len(want))
		}
		fmt.Printf("par-smoke: %-9s %6d ops → %5d reports, parallel(4) ≡ sequential ✓\n",
			variant, len(tr), len(want))
	}

	fmt.Println("par-smoke: OK — sharded checking reproduced every sequential report list exactly")
	return 0
}
