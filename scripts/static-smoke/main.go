// Command static-smoke exercises the static analysis tier end to end the
// way a pre-commit gate would: it builds vft-lint, runs it over every
// shipped example program, and verifies the verdicts through the exit
// codes — racy examples (including the schedule-hidden and falsely-locked
// ones, which a single dynamic run misses) must warn with positioned
// diagnostics, race-free ones must pass clean, and -json must emit valid
// JSON. It is a Go program rather than a shell script so `make
// static-smoke` works on any machine with just the toolchain.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
)

func main() { os.Exit(run()) }

func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "static-smoke: FAIL: "+format+"\n", args...)
	return 1
}

// position matches the file:line:col: prefix every warning must carry.
var position = regexp.MustCompile(`^[^:]+\.vft:\d+:\d+: race on `)

func run() int {
	tmp, err := os.MkdirTemp("", "static-smoke")
	if err != nil {
		return fail("%v", err)
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "vft-lint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/vft-lint")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fail("build: %v", err)
	}

	cases := []struct {
		example  string
		wantExit int
	}{
		{"account.vft", 1},   // the paper's racy audit
		{"window.vft", 1},    // racy, but hidden from a single dynamic run
		{"respawn.vft", 1},   // a loop-spawned thread racing with itself
		{"mislocked.vft", 1}, // a deliberate static false positive
		{"pipeline.vft", 0},  // clean via volatile spin publication + barrier
		{"philosophers.vft", 0},
		{"phases.vft", 0}, // clean via barrier-phase separation
	}
	for _, c := range cases {
		path := filepath.Join("examples", "minilang", c.example)
		if _, err := os.Stat(path); err != nil {
			return fail("%s: %v", c.example, err)
		}
		out, exit, err := runLint(bin, path)
		if err != nil {
			return fail("%s: %v", c.example, err)
		}
		if exit != c.wantExit {
			return fail("%s: exit %d, want %d\noutput:\n%s", c.example, exit, c.wantExit, out)
		}
		if c.wantExit == 1 {
			for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
				if !position.MatchString(line) {
					return fail("%s: warning without a file:line:col position: %q", c.example, line)
				}
			}
		} else if strings.TrimSpace(out) != "" {
			return fail("%s: expected no output on a clean program, got:\n%s", c.example, out)
		}
		fmt.Printf("static-smoke: %-18s exit=%d ok\n", c.example, exit)
	}

	// -json over a racy and a clean file must parse and carry the verdict.
	out, exit, err := runLint(bin, "-json",
		filepath.Join("examples", "minilang", "account.vft"),
		filepath.Join("examples", "minilang", "phases.vft"))
	if err != nil {
		return fail("-json: %v", err)
	}
	if exit != 1 {
		return fail("-json: exit %d, want 1", exit)
	}
	var files []struct {
		File     string            `json:"file"`
		Warnings []json.RawMessage `json:"warnings"`
	}
	if err := json.Unmarshal([]byte(out), &files); err != nil {
		return fail("-json: invalid JSON: %v\n%s", err, out)
	}
	if len(files) != 2 || len(files[0].Warnings) == 0 || len(files[1].Warnings) != 0 {
		return fail("-json: unexpected shape: %s", out)
	}
	fmt.Println("static-smoke: -json ok")
	fmt.Println("static-smoke: PASS")
	return 0
}

// runLint runs the built vft-lint with args, returning combined stdout,
// the exit code, and any non-exit error.
func runLint(bin string, args ...string) (string, int, error) {
	cmd := exec.Command(bin, args...)
	var sb strings.Builder
	cmd.Stdout = &sb
	cmd.Stderr = os.Stderr
	err := cmd.Run()
	if err == nil {
		return sb.String(), 0, nil
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return sb.String(), ee.ExitCode(), nil
	}
	return sb.String(), -1, err
}
