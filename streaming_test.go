package verifiedft

import (
	"bytes"
	"compress/gzip"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/trace"
)

// preciseVariantsUnderTest are the five FastTrack-family implementations
// the paper evaluates; all must agree between the materialized and
// streaming entry points.
var preciseVariantsUnderTest = []string{FTMutex, FTCAS, V1, V15, V2}

// TestCheckSourceMatchesCheckTrace: on the same 10k-op generated prefix,
// CheckSource over a streaming generator and CheckTrace over the
// materialized trace produce identical reports for every variant — the
// refactor's no-drift guarantee, exercised end to end (same ops reach both
// by generator determinism, and CheckTrace is a wrapper by construction).
func TestCheckSourceMatchesCheckTrace(t *testing.T) {
	const ops, seed = 10_000, 99
	cfg := trace.DefaultGenConfig()
	cfg.Ops = ops
	materialized := trace.Generate(rand.New(rand.NewSource(seed)), cfg)

	for _, variant := range preciseVariantsUnderTest {
		t.Run(variant, func(t *testing.T) {
			want, err := CheckTrace(materialized, WithVariant(variant))
			if err != nil {
				t.Fatal(err)
			}
			src := trace.GenerateSource(rand.New(rand.NewSource(seed)), cfg)
			got, err := CheckSource(src, WithVariant(variant))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("report drift: CheckTrace %d reports, CheckSource %d\n%v\nvs\n%v",
					len(want), len(got), want, got)
			}
		})
	}
}

// checkGenerated runs CheckSource over an n-op generated stream that is
// never materialized and returns the heap allocated during the run.
func checkGenerated(t *testing.T, variant string, n int) uint64 {
	t.Helper()
	cfg := trace.DefaultGenConfig()
	cfg.Ops = n
	src := trace.GenerateSource(rand.New(rand.NewSource(7)), cfg)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	reports, err := CheckSource(src, WithVariant(variant), WithMaxReportsPerVar(1))
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	_ = reports
	return after.TotalAlloc - before.TotalAlloc
}

// TestCheckSourceBoundedMemory: checking a 1M-op stream allocates barely
// more than checking a 200k-op stream of the same shape — the pipeline's
// footprint scales with the id spaces (fixed here by the generator
// config), not the stream length. A materialized 1M-op trace alone is
// ~16 MB of Op structs, so the ceiling on the *delta* (4 MB for 800k extra
// ops) is far below what any whole-trace path could meet. All five
// variants are held to it.
func TestCheckSourceBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-op streams in -short mode")
	}
	const small, large = 200_000, 1_000_000
	const deltaCeiling = 4 << 20
	for _, variant := range preciseVariantsUnderTest {
		t.Run(variant, func(t *testing.T) {
			base := checkGenerated(t, variant, small)
			full := checkGenerated(t, variant, large)
			delta := int64(full) - int64(base)
			t.Logf("%s: %d-op run allocated %d bytes, %d-op run %d (delta %d)",
				variant, small, base, large, full, delta)
			if delta > deltaCeiling {
				t.Fatalf("allocation grew %d bytes from %d to %d ops — streaming path is materializing (ceiling %d)",
					delta, small, large, deltaCeiling)
			}
		})
	}
}

// TestCheckReaderSniffsEncodings: the io.Reader entry point accepts all
// three on-the-wire encodings and agrees with CheckTrace.
func TestCheckReaderSniffsEncodings(t *testing.T) {
	tr := Trace{Fork(0, 1), Write(0, 0), Write(1, 0), Join(0, 1)}
	want, err := CheckTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture trace should race")
	}
	var text, bin bytes.Buffer
	if err := trace.Encode(&text, tr); err != nil {
		t.Fatal(err)
	}
	if err := trace.EncodeBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	var gzBin bytes.Buffer
	zw := gzip.NewWriter(&gzBin)
	if _, err := zw.Write(bin.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	encodings := map[string][]byte{
		"text":        text.Bytes(),
		"binary":      bin.Bytes(),
		"gzip-binary": gzBin.Bytes(),
	}
	for name, data := range encodings {
		t.Run(name, func(t *testing.T) {
			got, err := CheckReader(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("report drift on %s input:\n%v\nvs\n%v", name, want, got)
			}
		})
	}
}
